(* halotis — command-line front end.

   Subcommands:
     halotis lint     CIRCUIT.hnl [--stim STIM.hsv] [--liberty LIB]
                      [--format text|json] [--enable R] [--disable R]
                      [--severity R=LEVEL] [--strict] [--list-rules]
     halotis check    CIRCUIT.hnl            (thin alias for lint)
     halotis generate KIND [-o FILE] [--m N] [--n N] [--bits N] ...
     halotis simulate CIRCUIT.hnl --stim STIM.hsv [--model ddm|cdm|classic]
                      [--vcd FILE] [--diagram] [--t-stop PS]
     halotis compare  CIRCUIT.hnl --stim STIM.hsv [--t-stop PS]              *)

open Cmdliner

module N = Halotis_netlist.Netlist
module Hnl = Halotis_netlist.Hnl
module Check = Halotis_netlist.Check
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Sim = Halotis_engine.Sim
module Digital = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd
module Asim = Halotis_analog.Sim
module Stimfile = Halotis_stim.Stimfile
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module Figures = Halotis_report.Figures
module Table = Halotis_report.Table
module Sta = Halotis_sta.Sta
module Liberty = Halotis_liberty.Liberty
module Lib_fit = Halotis_liberty.Fit
module Lib_writer = Halotis_liberty.Writer
module Lint = Halotis_lint.Lint
module Rule = Halotis_lint.Rule
module Finding = Halotis_lint.Finding
module Json = Halotis_util.Json
module Site = Halotis_fault.Site
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report
module Journal = Halotis_fault.Journal
module Shard = Halotis_fault.Shard
module Supervisor = Halotis_fault.Supervisor
module Sampler = Halotis_vary.Sampler
module Aging = Halotis_vary.Aging
module Sweep = Halotis_vary.Sweep
module Vary_report = Halotis_vary.Vary_report
module Param_overlay = Halotis_tech.Param_overlay
module Stats = Halotis_engine.Stats
module Stop = Halotis_guard.Stop
module Budget = Halotis_guard.Budget
module Server = Halotis_serve.Server
module Protocol = Halotis_serve.Protocol
module Watchdog = Halotis_guard.Watchdog
module Diag = Halotis_guard.Diag

let vt = DL.vdd /. 2.

(* --- shared loading helpers --- *)

(* All input failures funnel through Diag: one rendering (code,
   file:line, message, hint), no backtraces. *)

let die_diag d =
  prerr_endline ("halotis: " ^ Diag.to_string d);
  exit 1

let io_diag m = Diag.make ~code:"io" m

let load_circuit path =
  (* dispatch on extension: .bench is ISCAS-85, anything else is HNL *)
  if Filename.check_suffix path ".bench" then
    match Halotis_netlist.Iscas.parse_file path with
    | Ok c -> Ok c
    | Error e ->
        Error
          (Diag.make ~code:"iscas-parse" ~file:path ~line:e.Halotis_netlist.Iscas.line
             ~hint:"ISCAS-85 lines look like `G10 = NAND(G1, G3)`"
             e.Halotis_netlist.Iscas.message)
    | exception Sys_error m -> Error (io_diag m)
  else
    match Hnl.parse_file path with
    | Ok c -> Ok c
    | Error e ->
        Error
          (Diag.make ~code:"netlist-parse" ~file:path ~line:e.Hnl.line
             ~hint:"see doc/FORMATS.md for the HNL grammar" e.Hnl.message)
    | exception Sys_error m -> Error (io_diag m)

let load_stimfile path =
  match Stimfile.parse_file path with
  | Error e ->
      Error
        (Diag.make ~code:"stim-parse" ~file:path ~line:e.Stimfile.line
           ~hint:"stimulus lines look like `input a 0 1@2000 0@4000`"
           e.Stimfile.message)
  | exception Sys_error m -> Error (io_diag m)
  | Ok stim -> Ok stim

let load_liberty path =
  match Liberty.parse_file path with
  | Ok lib -> Ok lib
  | Error e -> Error (Diag.make ~code:"liberty-parse" ~file:path e.Liberty.message)
  | exception Sys_error m -> Error (io_diag m)

let load_tech = function
  | None -> DL.tech
  | Some path -> (
      match load_liberty path with
      | Ok lib ->
          let tech, qualities =
            Lib_fit.to_tech ~base:DL.tech ~kind_of_cell:Lib_fit.default_kind_of_cell lib
          in
          List.iter
            (fun (kind, q) ->
              Printf.eprintf "liberty: fitted %s (delay rmse %.2f ps)\n"
                (Halotis_logic.Gate_kind.name kind)
                q.Lib_fit.delay_rmse)
            qualities;
          tech
      | Error d -> die_diag d)

let or_die = function Ok v -> v | Error d -> die_diag d

let bind_stim stim c =
  match Stimfile.bind stim c with
  | Ok drives -> drives
  | Error m ->
      die_diag
        (Diag.make ~code:"stim-bind"
           ~hint:"stimulus entries must name primary inputs of the circuit" m)

(* Default simulation horizon: last stimulus change + slack for
   propagation. *)
let horizon_of_drives drives t_stop =
  match t_stop with
  | Some t -> t
  | None ->
      let last =
        List.fold_left
          (fun acc (_, (d : Halotis_engine.Drive.t)) ->
            List.fold_left
              (fun acc (tr : Halotis_wave.Transition.t) ->
                Float.max acc tr.Halotis_wave.Transition.start)
              acc d.Halotis_engine.Drive.transitions)
          0. drives
      in
      last +. 10_000.

(* --- lint / check --- *)

(* Pre-flight pass wired into simulate/compare: engine-relevant rules
   only, warnings and errors, on stderr, never fatal (an actual cycle
   still fails inside the engine's own topological sort).

   [suggest_watchdog]: when an NL008 finding flags an oscillation-risk
   feedback loop and the user has not armed a watchdog, suggest a trip
   threshold sized to the largest flagged SCC. *)
let preflight ?stim ?(suggest_watchdog = false) tech c =
  let findings = Lint.preflight ?stim ~tech c in
  List.iter (fun f -> Format.eprintf "preflight: %a@." Finding.pp f) findings;
  if suggest_watchdog then begin
    let scc_gates =
      List.fold_left
        (fun acc (f : Finding.t) ->
          match (f.Finding.rule, f.Finding.location) with
          | "NL008", Finding.Gates names -> max acc (List.length names)
          | _ -> acc)
        0 findings
    in
    if scc_gates > 0 then
      Format.eprintf
        "preflight: hint: this design risks oscillation — consider --watchdog \
         --watchdog-threshold %d (sized to the largest flagged feedback loop, %d gates)@."
        (Watchdog.suggest_threshold ~scc_gates ())
        scc_gates
  end

let run_lint path stim_path liberty_path format strict disables enables severities
    fanout_threshold list_rules =
  let json = format = `Json in
  if list_rules then begin
    (if json then print_endline (Json.to_string (Lint.rules_json ()))
     else
       List.iter
         (fun (r : Rule.t) ->
           Printf.printf "%-6s %-8s %-8s %s\n" r.Rule.id
             (Finding.domain_to_string r.Rule.domain)
             (Finding.severity_to_string r.Rule.severity)
             r.Rule.doc)
         Rule.all);
    0
  end
  else begin
    let path =
      match path with
      | Some p -> p
      | None ->
          prerr_endline "halotis: lint needs a CIRCUIT argument (or --list-rules)";
          (* cmdliner's cli_error code, so 1 stays reserved for
             "warnings under --strict" *)
          exit 124
    in
    let c = or_die (load_circuit path) in
    let liberty = Option.map (fun p -> or_die (load_liberty p)) liberty_path in
    let tech =
      match liberty with
      | None -> DL.tech
      | Some lib ->
          fst (Lib_fit.to_tech ~base:DL.tech ~kind_of_cell:Lib_fit.default_kind_of_cell lib)
    in
    let stim = Option.map (fun p -> or_die (load_stimfile p)) stim_path in
    let overrides =
      List.map (fun id -> (id, `Off)) disables
      @ List.map (fun id -> (id, `On)) enables
      @ List.map (fun (id, level) -> (id, `Severity level)) severities
    in
    let config = { Rule.default_config with Rule.overrides; fanout_threshold } in
    let findings = Lint.run ~config ~tech ?liberty ?stim c in
    (* Human-readable findings go to stderr; stdout carries only the
       JSON document so `--format json` stays machine-parseable. *)
    if json then print_endline (Json.to_string (Lint.report_to_json findings))
    else Format.eprintf "%a" Lint.pp_text findings;
    Format.eprintf "lint: %s: %s@." (N.name c) (Lint.summary findings);
    Lint.exit_code ~strict findings
  end

(* `check` stays as a thin alias for lint at default configuration; its
   structural summary moves to stderr so stdout stays clean. *)
let run_check path =
  let c = or_die (load_circuit path) in
  Format.eprintf "%a@." N.pp_summary c;
  (match Check.depth c with
  | Some d -> Format.eprintf "logic depth: %d@." d
  | None -> Format.eprintf "logic depth: n/a (cyclic)@.");
  Format.eprintf "max fanout: %d@." (Check.max_fanout c);
  run_lint (Some path) None None `Text false [] [] [] Rule.default_config.Rule.fanout_threshold
    false

(* --- generate --- *)

let run_generate kind m n bits gates inputs seed output format =
  let circuit =
    match kind with
    | "mult" -> (G.array_multiplier ~m ~n ()).G.mult_circuit
    | "mult-nand" -> (G.array_multiplier ~nand_only:true ~m ~n ()).G.mult_circuit
    | "wallace" -> (G.wallace_multiplier ~m ~n ()).G.mult_circuit
    | "rca" -> (G.ripple_carry_adder ~bits ()).G.adder_circuit
    | "chain" -> G.inverter_chain ~n ()
    | "fig1" -> (G.fig1_circuit ()).G.circuit
    | "latch" -> (G.sr_latch ()).G.latch_circuit
    | "latch-glitch" -> (G.latch_glitch_circuit ()).G.lg_circuit
    | "c17" -> Lazy.force Halotis_netlist.Iscas.c17
    | "random" -> G.random_combinational ~gates ~inputs ~seed ()
    | other ->
        prerr_endline
          ("halotis: unknown generator " ^ other
         ^ " (expected mult, mult-nand, wallace, rca, chain, fig1, latch, latch-glitch, \
            random)");
        exit 1
  in
  let render () =
    match format with
    | `Hnl -> Ok (Hnl.to_string circuit)
    | `Bench -> Halotis_netlist.Iscas.to_string circuit
  in
  (match render () with
  | Error m ->
      prerr_endline ("halotis: " ^ m);
      exit 1
  | Ok text -> (
      match output with
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Format.printf "wrote %a to %s@." N.pp_summary circuit path
      | None -> print_string text));
  0

(* --- simulate --- *)

let print_diagram c edges_of t1 =
  let lanes =
    List.map
      (fun sid ->
        let name = N.signal_name c sid in
        let initial, edges = edges_of sid in
        Figures.lane_of_edges ~label:name ~initial edges)
      (N.primary_outputs c)
  in
  print_string (Figures.timing_diagram ~width:100 ~t0:0. ~t1 lanes)

let print_power_report tech c (r : Iddm.result) =
  let module Act = Halotis_power.Activity in
  let module Energy = Halotis_power.Energy in
  let module Glitch = Halotis_power.Glitch in
  let act = Act.of_iddm r in
  let energy = Energy.of_report tech c act in
  Printf.printf "activity: %d transitions, %d complete pulses\n" act.Act.total_transitions
    act.Act.full_pulses;
  Printf.printf "dynamic energy: %.2f pJ\n" (energy.Energy.total_fj /. 1000.);
  print_endline "busiest signals:";
  List.iter (fun (name, n) -> Printf.printf "  %-14s %d\n" name n) (Act.busiest act ~n:5);
  print_endline "pulse-width histogram:";
  Format.printf "%a"
    Glitch.pp_histogram
    (Glitch.pulse_width_histogram ~vt:(DL.vdd /. 2.) r.Iddm.waveforms)

(* The JSON result document of `simulate --json`, engine-independent
   via the Sim facade: stats, the stop reason and the partial flag are
   what scripts poll to detect a guardrail trip; event_rate_top is the
   watchdog's event-rate view, present whether or not one tripped. *)
let simulate_json c ~model_name ~horizon (r : Sim.result) =
  Json.Obj
    [
      ("tool", Json.Str "halotis-simulate");
      ("circuit", Json.Str (N.name c));
      ("model", Json.Str model_name);
      ("t_stop", Json.Num horizon);
      ("partial", Json.Bool (not (Stop.completed r.Sim.rs_stopped_by)));
      ("stopped_by", Stop.to_json r.Sim.rs_stopped_by);
      ("stats", Stats.to_json r.Sim.rs_stats);
      ( "frozen",
        Json.Arr
          (List.map
             (fun (sid, at) ->
               Json.Obj
                 [ ("signal", Json.Str (N.signal_name c sid)); ("at", Json.Num at) ])
             r.Sim.rs_frozen) );
      ( "outputs",
        Json.Arr
          (List.map
             (fun (name, edges) ->
               Json.Obj
                 [
                   ("signal", Json.Str name);
                   ("edges", Json.Num (float_of_int (List.length edges)));
                 ])
             (Sim.output_edges r)) );
      ( "event_rate_top",
        Json.Arr
          (List.map
             (fun (name, nedges) ->
               Json.Obj
                 [
                   ("signal", Json.Str name);
                   ("edges", Json.Num (float_of_int nedges));
                 ])
             (Sim.top_offenders r)) );
    ]

let partial_comment stopped =
  if Stop.completed stopped then None
  else Some ("PARTIAL dump: run stopped by " ^ Stop.to_string stopped)

let warn_stop stopped =
  if not (Stop.completed stopped) then
    Format.eprintf "halotis: simulation stopped early: %a@." Stop.pp stopped

let run_simulate path stim_path model t_stop vcd_path diagram liberty report max_events
    max_wall max_queue max_sim_time watchdog degrade wd_window wd_threshold json
    checkpoint_path =
  let tech = load_tech liberty in
  let c = or_die (load_circuit path) in
  let stim = or_die (load_stimfile stim_path) in
  preflight ~stim ~suggest_watchdog:(not (watchdog || degrade)) tech c;
  let drives = bind_stim stim c in
  let horizon = horizon_of_drives drives t_stop in
  let budget =
    Budget.make ?max_events ?max_wall_s:max_wall ?max_queue ?max_sim_time ()
  in
  let wd_config =
    if watchdog || degrade then
      Some
        (Watchdog.config ~window:wd_window ~threshold:wd_threshold
           ~mode:(if degrade then Watchdog.Degrade else Watchdog.Halt)
           ())
    else None
  in
  match model with
  | `Engine engine ->
      let r =
        Sim.run engine
          (Sim.spec ~drives ~t_stop:horizon ~budget ?watchdog:wd_config ~tech c)
      in
      let model_name = Sim.engine_display_name engine in
      warn_stop r.Sim.rs_stopped_by;
      if json then print_endline (Json.to_string (simulate_json c ~model_name ~horizon r))
      else begin
        Format.printf "%s: %a@." model_name Halotis_engine.Stats.pp r.Sim.rs_stats;
        List.iter
          (fun (name, edges) ->
            Format.printf "%s: %d edges%s@." name (List.length edges)
              (if edges = [] then ""
               else
                 ": "
                 ^ String.concat ", "
                     (List.map (Format.asprintf "%a" Digital.pp_edge) edges)))
          (Sim.output_edges r);
        if diagram then begin
          let edges = Sim.edges r and initials = Sim.initial_levels r in
          print_diagram c (fun sid -> (initials.(sid), edges.(sid))) horizon
        end;
        if report then
          match Sim.iddm r with
          | Some ir -> print_power_report tech c ir
          | None ->
              prerr_endline "halotis: --report needs a waveform engine (ddm or cdm); ignored"
      end;
      (match vcd_path with
      | Some p ->
          Vcd.write_file ?comment:(partial_comment r.Sim.rs_stopped_by) p (Sim.vcd_dumps r);
          Printf.eprintf "vcd written to %s\n" p
      | None -> ());
      (match checkpoint_path with
      | Some p when not (Stop.completed r.Sim.rs_stopped_by) -> (
          match Sim.iddm r with
          | Some _ ->
              Halotis_engine.Checkpoint.write p (Halotis_engine.Checkpoint.of_result r);
              Printf.eprintf "checkpoint written to %s (stopped by %s)\n" p
                (Stop.to_string r.Sim.rs_stopped_by)
          | None ->
              prerr_endline
                "halotis: --checkpoint needs a waveform engine (ddm or cdm); ignored")
      | Some _ | None -> ());
      Stop.exit_code r.Sim.rs_stopped_by
  | `Analog ->
      let r = Asim.run (Asim.config ~t_stop:horizon tech) c ~drives in
      List.iter
        (fun sid ->
          let name = N.signal_name c sid in
          Format.printf "%s: %d edges@." name (List.length (Asim.edges r name)))
        (N.primary_outputs c);
      if diagram then
        print_diagram c
          (fun sid ->
            let tr = r.Asim.traces.(sid) in
            (Asim.value_at tr 0. > vt, Asim.crossings tr ~vt))
          horizon;
      0

(* --- compare --- *)

let run_compare path stim_path t_stop =
  let c = or_die (load_circuit path) in
  let stim = or_die (load_stimfile stim_path) in
  preflight ~stim DL.tech c;
  let drives = bind_stim stim c in
  let horizon = match t_stop with Some t -> t | None -> 25_000. in
  let spec = Sim.spec ~drives ~t_stop:horizon ~tech:DL.tech c in
  let rd = Sim.run Sim.Ddm spec in
  let rc = Sim.run Sim.Cdm spec in
  let rcl = Sim.run Sim.Classic_inertial spec in
  let ra = Asim.run (Asim.config ~t_stop:horizon DL.tech) c ~drives in
  let rows =
    List.map
      (fun sid ->
        let name = N.signal_name c sid in
        [
          name;
          string_of_int (List.length (Asim.edges ra name));
          string_of_int (List.length (Sim.edges rd).(sid));
          string_of_int (List.length (Sim.edges rc).(sid));
          string_of_int (List.length (Sim.edges rcl).(sid));
        ])
      (N.primary_outputs c)
  in
  Table.print
    (Table.make ~header:[ "output"; "analog"; "ddm"; "cdm"; "classic" ] ~rows);
  Format.printf "ddm: %a@." Halotis_engine.Stats.pp rd.Sim.rs_stats;
  Format.printf "cdm: %a@." Halotis_engine.Stats.pp rc.Sim.rs_stats;
  0

(* --- faults --- *)

let usage_diag ?hint m = die_diag (Diag.make ~code:"usage" ?hint m)

(* Lossless float round-trip for the worker argv: cmdliner's float conv
   reads hex floats back bit-exactly, which keeps a worker's campaign
   fingerprint (journal header) byte-identical to the parent's. *)
let farg = Printf.sprintf "%h"

(* Chaos-injection hooks, honoured only in [--range] worker mode: the
   supervisor tests, the CI chaos smoke job and bench/exp_supervise
   inject worker crashes and hangs through the environment.
     HALOTIS_CHAOS_KILL=N    torn journal write + SIGKILL self after N
                             fresh verdicts (at most once per chunk)
     HALOTIS_CHAOS_HANG=N    stop heartbeating after N fresh verdicts
                             (at most once per chunk)
     HALOTIS_CHAOS_POISON=I  SIGKILL self just before journaling global
                             site I — every attempt, so the supervisor
                             must quarantine I to finish
     HALOTIS_CHAOS_TOKENS=D  bound kills/hangs globally: each claims a
                             token file from directory D instead of the
                             per-chunk sentinel *)
type chaos = {
  cz_kill : int option;
  cz_hang : int option;
  cz_poison : int option;
  cz_tokens : string option;
  mutable cz_count : int;
}

let chaos_of_env () =
  let geti v = Option.bind (Sys.getenv_opt v) int_of_string_opt in
  {
    cz_kill = geti "HALOTIS_CHAOS_KILL";
    cz_hang = geti "HALOTIS_CHAOS_HANG";
    cz_poison = geti "HALOTIS_CHAOS_POISON";
    cz_tokens = Sys.getenv_opt "HALOTIS_CHAOS_TOKENS";
    cz_count = 0;
  }

(* One chaos event per claim: a token file from the bounding directory,
   or (without one) a per-chunk sentinel created O_EXCL so retries of
   the same chunk don't crash forever. *)
let chaos_claim cz ~journal =
  match cz.cz_tokens with
  | Some dir -> (
      match Sys.readdir dir with
      | files ->
          Array.exists
            (fun f ->
              match Sys.remove (Filename.concat dir f) with
              | () -> true
              | exception Sys_error _ -> false)
            files
      | exception Sys_error _ -> false)
  | None -> (
      match
        Unix.openfile (journal ^ ".chaos")
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
          0o644
      with
      | fd ->
          Unix.close fd;
          true
      | exception Unix.Unix_error _ -> false)

let chaos_die () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* fires just before journaling the fresh verdict of global site [idx] *)
let chaos_pre cz idx =
  match cz.cz_poison with Some p when p = idx -> chaos_die () | _ -> ()

(* fires just after journaling (and fsyncing) a fresh verdict *)
let chaos_post cz ~journal =
  cz.cz_count <- cz.cz_count + 1;
  (match cz.cz_hang with
  | Some n when cz.cz_count >= n && chaos_claim cz ~journal ->
      while true do
        Unix.sleep 3600
      done
  | _ -> ());
  match cz.cz_kill with
  | Some n when cz.cz_count >= n && chaos_claim cz ~journal ->
      (* leave a torn final line behind: readers must cope with it *)
      let oc = open_out_gen [ Open_append ] 0o644 journal in
      output_string oc "v 99999 torn";
      flush oc;
      chaos_die ()
  | _ -> ()

let run_faults path stim_path engine n seed width slope t_stop exhaustive grid format
    vcd_dir liberty journal_path resume_path limit_sites site_max_events jobs shard
    range_spec supervise worker_timeout max_retries chunk_sites poison_after
    prune_mode incremental keep_shards =
  let tech = load_tech liberty in
  let c = or_die (load_circuit path) in
  let stim = or_die (load_stimfile stim_path) in
  if jobs < 0 then usage_diag "--jobs must be non-negative (0 auto-detects cores)";
  let jobs =
    if jobs > 0 then jobs
    else begin
      let n = Halotis_fault.Shard.available_cores () in
      Printf.eprintf "faults: --jobs 0: using %d detected core%s\n%!" n
        (if n = 1 then "" else "s");
      n
    end
  in
  let is_worker = shard <> None || range_spec <> None in
  let supervised =
    match supervise with `On -> true | `Off -> false | `Auto -> jobs > 1
  in
  let prune = prune_mode = `Static in
  (* the campaign silently ignores the flag in these cases; say why *)
  if prune && not is_worker then begin
    if engine = Campaign.Classic_inertial then
      prerr_endline
        "halotis: --prune static has no effect with the classic engine (no pulse-width \
         semantics to bound); all sites will be simulated";
    if site_max_events <> None then
      prerr_endline
        "halotis: --prune static is disabled by --site-max-events (a budget-tripped \
         site must be able to report timed-out); all sites will be simulated"
  end;
  if shard <> None && range_spec <> None then
    usage_diag "--shard and --range are mutually exclusive";
  if is_worker && jobs > 1 then
    usage_diag "--shard/--range and --jobs are mutually exclusive";
  if is_worker && limit_sites <> None then
    usage_diag "--limit-sites cannot be used inside a worker";
  (* A worker's stderr should carry verdict progress, not N copies of
     the same preflight report the parent already printed. *)
  if not is_worker then preflight ~stim tech c;
  let drives = bind_stim stim c in
  let horizon = horizon_of_drives drives t_stop in
  let pulse =
    try Inject.pulse ~slope ~width ()
    with Invalid_argument m -> die_diag (Diag.make ~code:"invalid-input" m)
  in
  let site_budget = Budget.make ?max_events:site_max_events () in
  let cfg =
    Campaign.config ~engine ~seed ~n ~pulse ~t_stop:horizon ~site_budget ~prune
      ~incremental ()
  in
  let sites =
    if not exhaustive then None
    else
      let baseline =
        match Sim.iddm (Sim.run Sim.Ddm (Sim.spec ~drives ~t_stop:horizon ~tech c)) with
        | Some r -> r
        | None -> assert false
      in
      Some (Site.exhaustive ~baseline ~times:(Site.grid ~t0:0. ~t1:horizon ~points:grid))
  in
  (* The campaign's deterministic size, known without running anything:
     the explicit site list's length, or the sample count. *)
  let sites_total =
    match sites with Some s -> List.length s | None -> cfg.Campaign.n
  in
  (* Checkpoint/resume: --journal starts a fresh journal, --resume
     loads one and keeps appending to it. *)
  (match (journal_path, resume_path) with
  | Some _, Some _ ->
      usage_diag ~hint:"--resume already appends new verdicts to the journal it loads"
        "--journal and --resume are mutually exclusive"
  | _ -> ());
  (* Report rendering shared by the serial and the sharded-parent
     paths — byte-identical output is the whole point. *)
  let emit_report campaign =
    (match format with
    | `Json -> print_endline (Fault_report.to_string campaign)
    | `Text -> print_string (Fault_report.to_text campaign));
    (match vcd_dir with
    | Some _ when engine = Campaign.Classic_inertial ->
        prerr_endline "halotis: --vcd-dir needs a waveform engine (ddm or cdm); ignored"
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let veng = if engine = Campaign.Cdm then Sim.Cdm else Sim.Ddm in
        List.iteri
          (fun i (v : Campaign.verdict) ->
            if v.Campaign.vd_outcome = Campaign.Propagated then begin
              let r =
                Sim.run veng
                  (Sim.spec ~drives
                     ~injections:[ Inject.injection v.Campaign.vd_site pulse ]
                     ~t_stop:horizon ~tech c)
              in
              let file =
                Filename.concat dir
                  (Printf.sprintf "site%03d_%s.vcd" i
                     (N.gate_name c v.Campaign.vd_site.Site.st_gate))
              in
              Vcd.write_file file (Sim.vcd_dumps r);
              Printf.eprintf "vcd written to %s\n" file
            end)
          campaign.Campaign.cam_verdicts
    | None -> ());
    0
  in
  (* The campaign-defining flags a parent hands its workers, shared by
     the supervised and the legacy one-shot paths. *)
  let campaign_argv =
    [ Sys.executable_name; "faults"; path; "--stim"; stim_path ]
    @ [ "--engine"; Campaign.engine_to_string engine ]
    @ [ "-n"; string_of_int n; "--seed"; string_of_int seed ]
    @ [ "--width"; farg width; "--slope"; farg slope ]
    @ [ "--t-stop"; farg horizon ]
    @ (if exhaustive then [ "--exhaustive"; "--grid"; string_of_int grid ] else [])
    @ (match liberty with Some p -> [ "--liberty"; p ] | None -> [])
    @ (match site_max_events with
      | Some e -> [ "--site-max-events"; string_of_int e ]
      | None -> [])
    @ (if prune then [ "--prune"; "static" ] else [])
    @ [ "--incremental"; (if incremental then "on" else "off") ]
  in
  match (shard, range_spec) with
  | Some _, Some _ -> assert false (* rejected above *)
  | None, Some (lo, hi) ->
      (* ----- supervised worker: one chunk of the site enumeration,
         fsynced per verdict with a heartbeat cursor; on a retry it
         resumes its own chunk journal, skipping quarantined sites ----- *)
      let jpath =
        match journal_path with
        | Some p -> p
        | None -> usage_diag "a --range worker needs --journal"
      in
      if resume_path <> None then
        usage_diag "--range workers resume their own --journal automatically";
      if lo < 0 || lo >= hi || hi > sites_total then
        usage_diag
          (Printf.sprintf "--range %d:%d out of bounds for %d sites" lo hi
             sites_total);
      let open_fresh () =
        ( [],
          [],
          Journal.open_new ~sync_every:1 ~cursor:true jpath
            (Journal.header_of ~circuit:(N.name c) ~range:(lo, hi) cfg) )
      in
      let completed, quarantined, writer =
        if not (Sys.file_exists jpath) then open_fresh ()
        else
          match Journal.load jpath with
          | h, indexed ->
              Journal.check h ~circuit:(N.name c) ~range:(lo, hi) cfg;
              let entries = Journal.contiguous ~first:lo indexed in
              let completed, quarantined = Journal.partition ~first:lo entries in
              Printf.eprintf "faults: range [%d,%d): resuming %s: %d of %d entries kept\n%!"
                lo hi jpath (List.length entries) (hi - lo);
              (completed, quarantined, Journal.open_append ~sync_every:1 ~cursor:true jpath)
          | exception Diag.Fail _ ->
              (* died inside the header write: nothing durable to keep *)
              open_fresh ()
      in
      let cz = chaos_of_env () in
      let campaign =
        Campaign.run
          ~on_verdict:(fun idx v ->
            chaos_pre cz idx;
            Journal.write writer idx v;
            chaos_post cz ~journal:jpath)
          { cfg with Campaign.sites; range = Some (lo, hi); completed; quarantined }
          tech c ~drives
      in
      Journal.close writer;
      Printf.eprintf "faults: range [%d,%d): %d sites done\n%!" lo hi
        (List.length campaign.Campaign.cam_verdicts);
      0
  | Some (k, nworkers), None ->
      (* ----- worker: simulate one deterministic site range, journal
         verdicts under their global indices, render nothing ----- *)
      let lo, hi = Halotis_fault.Shard.range ~total:sites_total ~jobs:nworkers k in
      let completed, quarantined, writer =
        match (journal_path, resume_path) with
        | Some p, None ->
            ( [],
              [],
              Journal.open_new p
                (Journal.header_of ~circuit:(N.name c) ~range:(lo, hi) cfg) )
        | None, Some p ->
            let h, indexed = Journal.load p in
            Journal.check h ~circuit:(N.name c) ~range:(lo, hi) cfg;
            let entries = Journal.contiguous ~first:lo indexed in
            let completed, quarantined = Journal.partition ~first:lo entries in
            Printf.eprintf "faults: shard %d/%d: resuming %s: %d of %d verdicts kept\n"
              k nworkers p (List.length entries) (hi - lo);
            (completed, quarantined, Journal.open_append p)
        | None, None ->
            usage_diag "a shard worker needs --journal or --resume"
        | Some _, Some _ -> assert false
      in
      let campaign =
        Campaign.run
          ~on_verdict:(fun idx v -> Journal.write writer idx v)
          { cfg with Campaign.sites; range = Some (lo, hi); completed; quarantined }
          tech c ~drives
      in
      Journal.close writer;
      Printf.eprintf "faults: shard %d/%d: %d sites done\n" k nworkers
        (List.length campaign.Campaign.cam_verdicts);
      0
  | None, None when supervised ->
      (* ----- supervised parent: a work-queue of chunk sub-ranges
         dispatched to a bounded pool, with heartbeats, retry/backoff
         and poison-site quarantine; the merged report stays
         byte-identical to --jobs 1 ----- *)
      if limit_sites <> None then
        usage_diag ~hint:"chunking is per worker range under --jobs"
          "--limit-sites cannot be combined with --jobs";
      let base, user_journal =
        match (journal_path, resume_path) with
        | Some p, None | None, Some p -> (p, true)
        | None, None -> (Filename.temp_file "halotis-faults" ".journal", false)
        | Some _, Some _ -> assert false
      in
      let worker_argv ~range:(lo, hi) ~journal =
        campaign_argv
        @ [ "--range"; Printf.sprintf "%d:%d" lo hi ]
        @ [ "--journal"; journal ]
      in
      let scfg =
        try
          Supervisor.config
            ~chunk_sites:
              (if chunk_sites > 0 then chunk_sites
               else Supervisor.auto_chunk_sites ~total:sites_total ~jobs)
            ~worker_timeout ~max_retries ~poison_after ~jobs ()
        with Invalid_argument m -> usage_diag m
      in
      Printf.eprintf
        "faults: supervising %d sites across %d workers (chunks of %d)\n%!"
        sites_total jobs scfg.Supervisor.sv_chunk_sites;
      let check h =
        match h.Journal.jh_range with
        | Some r -> Journal.check h ~circuit:(N.name c) ~range:r cfg
        | None -> Journal.check h ~circuit:(N.name c) cfg
      in
      let mk_header ~range = Journal.header_of ~circuit:(N.name c) ~range cfg in
      let outcome =
        Supervisor.run scfg ~total:sites_total ~base ~worker_argv ~check ~mk_header
          ~log:(fun m -> Printf.eprintf "faults: %s\n%!" m)
          ()
      in
      let slots = outcome.Supervisor.sv_slots in
      let h, indexed = Shard.load_merged ~base ~jobs:slots in
      Journal.check h ~circuit:(N.name c) cfg;
      let entries = Journal.contiguous ~first:0 indexed in
      let completed, quarantined = Journal.partition ~first:0 entries in
      (* re-running zero fresh sites revalidates every journaled verdict
         against the deterministic site list and rebuilds the aggregate
         stats exactly as a serial run would *)
      let campaign =
        Campaign.run { cfg with Campaign.sites; completed; quarantined } tech c ~drives
      in
      Format.eprintf "faults: %s: %s@." (N.name c) (Fault_report.summary campaign);
      if outcome.Supervisor.sv_retries > 0 then
        Printf.eprintf
          "faults: supervisor recovered %d worker failure%s (%d stall kill%s)\n%!"
          outcome.Supervisor.sv_retries
          (if outcome.Supervisor.sv_retries = 1 then "" else "s")
          outcome.Supervisor.sv_kills
          (if outcome.Supervisor.sv_kills = 1 then "" else "s");
      (match campaign.Campaign.cam_quarantined with
      | [] -> ()
      | qs ->
          Printf.eprintf "faults: DEGRADED: %d quarantined site%s: %s\n%!"
            (List.length qs)
            (if List.length qs = 1 then "" else "s")
            (String.concat ", "
               (List.map
                  (fun (i, site) ->
                    Printf.sprintf "%d (%s)" i
                      (Format.asprintf "%a" (Site.pp c) site))
                  qs)));
      if user_journal then begin
        (* leave the user one merged serial journal, as if --jobs 1 had
           written it; quarantine records keep their global indices *)
        let w =
          Journal.open_new ~sync_every:1024 base
            (Journal.header_of ~circuit:(N.name c) cfg)
        in
        List.iter
          (fun (i, e) ->
            match e with
            | Journal.Verdict v -> Journal.write w i v
            | Journal.Quarantined -> Journal.write_quarantine w i)
          indexed;
        Journal.close w
      end;
      for k = 0 to slots - 1 do
        let jpath = Shard.journal_path base k in
        if (not keep_shards) && Sys.file_exists jpath then Sys.remove jpath;
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ Shard.stderr_path base k; jpath ^ ".cursor"; jpath ^ ".chaos" ]
      done;
      if keep_shards then
        Printf.eprintf "faults: keeping per-chunk shard journals %s.0 .. %s.%d\n" base
          base (slots - 1);
      if (not user_journal) && Sys.file_exists base then Sys.remove base;
      let rc = emit_report campaign in
      if outcome.Supervisor.sv_exit_code <> 0 then outcome.Supervisor.sv_exit_code
      else rc
  | None, None when jobs > 1 ->
      (* ----- legacy one-shot parent (--supervise off): fork one worker
         per shard, wait, merge their journals, render the serial
         report ----- *)
      if limit_sites <> None then
        usage_diag ~hint:"chunking is per worker range under --jobs"
          "--limit-sites cannot be combined with --jobs";
      let base, user_journal =
        match (journal_path, resume_path) with
        | Some p, None | None, Some p -> (p, true)
        | None, None -> (Filename.temp_file "halotis-faults" ".journal", false)
        | Some _, Some _ -> assert false
      in
      let resuming = resume_path <> None in
      let worker_plan k =
        let jpath = Shard.journal_path base k in
        let resume_worker = resuming && Sys.file_exists jpath in
        let argv =
          campaign_argv
          @ [ "--shard"; Shard.spec_to_string (k, jobs) ]
          @ [ (if resume_worker then "--resume" else "--journal"); jpath ]
        in
        (jpath, resume_worker, argv)
      in
      Printf.eprintf "faults: sharding %d sites across %d workers\n%!" sites_total jobs;
      let workers =
        List.init jobs (fun k ->
            let jpath, resume_worker, argv = worker_plan k in
            let range = Shard.range ~total:sites_total ~jobs k in
            let w = Shard.spawn ~argv ~index:k ~range ~journal:jpath () in
            Printf.eprintf "faults: worker %d (pid %d): sites [%d, %d)%s\n%!" k
              w.Shard.wk_pid (fst range) (snd range)
              (if resume_worker then ", resuming" else "");
            w)
      in
      let results = Shard.wait_all workers in
      let failed =
        List.filter (fun (_, st) -> Shard.status_exit_code st <> 0) results
      in
      if failed <> [] then begin
        List.iter
          (fun ((w : Shard.worker), st) ->
            Printf.eprintf "faults: worker %d (sites [%d, %d)): %s\n" w.Shard.wk_index
              (fst w.Shard.wk_range) (snd w.Shard.wk_range)
              (Shard.status_to_string st))
          failed;
        Printf.eprintf
          "faults: %d of %d workers failed; their journaled verdicts survive in %s.K — \
           re-run with --jobs %d --resume %s to finish\n"
          (List.length failed) jobs base jobs base;
        (* a parent without --journal/--resume used a temp base: keep
           the shard files (they hold the survivors' work) and name it *)
        Shard.exit_code results
      end
      else begin
        let h, indexed = Shard.load_merged ~base ~jobs in
        Journal.check h ~circuit:(N.name c) cfg;
        let entries = Journal.contiguous ~first:0 indexed in
        let completed, quarantined = Journal.partition ~first:0 entries in
        (* re-running zero fresh sites revalidates every journaled
           verdict against the deterministic site list and rebuilds the
           aggregate stats exactly as a serial run would *)
        let campaign =
          Campaign.run { cfg with Campaign.sites; completed; quarantined } tech c ~drives
        in
        Format.eprintf "faults: %s: %s@." (N.name c) (Fault_report.summary campaign);
        if user_journal then begin
          (* leave the user one merged serial journal, as if --jobs 1
             had written it *)
          let w =
            Journal.open_new ~sync_every:1024 base
              (Journal.header_of ~circuit:(N.name c) cfg)
          in
          List.iter
            (fun (i, e) ->
              match e with
              | Journal.Verdict v -> Journal.write w i v
              | Journal.Quarantined -> Journal.write_quarantine w i)
            indexed;
          Journal.close w
        end;
        if keep_shards then
          Printf.eprintf "faults: keeping per-worker shard journals %s.0 .. %s.%d\n" base
            base (jobs - 1)
        else
          List.iter
            (fun ((w : Shard.worker), _) ->
              if Sys.file_exists w.Shard.wk_journal then Sys.remove w.Shard.wk_journal)
            results;
        if (not user_journal) && Sys.file_exists base then Sys.remove base;
        let rc = emit_report campaign in
        if campaign.Campaign.cam_quarantined <> [] then Stop.degraded_exit_code
        else rc
      end
  | None, None ->
      (* ----- serial: the original single-process path ----- *)
      let completed, quarantined =
        match resume_path with
        | None -> ([], [])
        | Some jpath ->
            let h, indexed = Journal.load jpath in
            Journal.check h ~circuit:(N.name c) cfg;
            let entries = Journal.contiguous ~first:0 indexed in
            let completed, quarantined = Journal.partition ~first:0 entries in
            Printf.eprintf "faults: resuming from %s: %d verdicts already decided\n"
              jpath (List.length entries);
            (completed, quarantined)
      in
      let writer =
        match (journal_path, resume_path) with
        | Some p, None ->
            Some (p, Journal.open_new p (Journal.header_of ~circuit:(N.name c) cfg))
        | None, Some p -> Some (p, Journal.open_append p)
        | None, None | Some _, Some _ -> None
      in
      let on_verdict = Option.map (fun (_, w) idx v -> Journal.write w idx v) writer in
      let campaign =
        Campaign.run ?on_verdict
          { cfg with Campaign.sites; completed; quarantined; limit = limit_sites }
          tech c ~drives
      in
      (match writer with Some (_, w) -> Journal.close w | None -> ());
      (* Summary to stderr so stdout carries only the report document. *)
      Format.eprintf "faults: %s: %s@." (N.name c) (Fault_report.summary campaign);
      if not campaign.Campaign.cam_complete then begin
        (* Parked early: no report — the verdicts are durable in the
           journal and the campaign resumes from there. *)
        Format.eprintf "faults: campaign parked after %d of %d sites%s@."
          (List.length campaign.Campaign.cam_verdicts)
          campaign.Campaign.cam_sites_total
          (match writer with
          | Some (p, _) -> Printf.sprintf " — continue with --resume %s" p
          | None -> " (no --journal: progress was not saved)");
        exit 3
      end;
      let rc = emit_report campaign in
      if campaign.Campaign.cam_quarantined <> [] then Stop.degraded_exit_code else rc

(* --- vary --- *)

(* Sample k's journal lives beside the base path, mirroring the shard
   naming scheme ("base.k") with an "s" so the two never collide when a
   vary campaign and a faults campaign share a directory. *)
let sample_journal base k = Printf.sprintf "%s.s%d" base k

let run_vary path stim_path engine seed n width slope t_stop samples sigma_device
    sigma_chip sigma_lot stress_hours ttf jobs journal_path resume_path liberty
    sample_worker format =
  let tech = load_tech liberty in
  let c = or_die (load_circuit path) in
  let stim = or_die (load_stimfile stim_path) in
  let is_worker = sample_worker <> None in
  if not is_worker then preflight ~stim tech c;
  let drives = bind_stim stim c in
  let horizon = horizon_of_drives drives t_stop in
  let pulse =
    try Inject.pulse ~slope ~width ()
    with Invalid_argument m -> die_diag (Diag.make ~code:"invalid-input" m)
  in
  let sigmas =
    try Sampler.sigmas ~device:sigma_device ~chip:sigma_chip ~lot:sigma_lot ()
    with Invalid_argument m -> usage_diag m
  in
  if samples < 0 then usage_diag "--samples must be non-negative";
  if stress_hours < 0. then usage_diag "--stress-hours must be non-negative";
  (match (journal_path, resume_path) with
  | Some _, Some _ ->
      usage_diag ~hint:"--resume already appends new verdicts to the journals it loads"
        "--journal and --resume are mutually exclusive"
  | _ -> ());
  let cfg = Campaign.config ~engine ~seed ~n ~pulse ~t_stop:horizon () in
  (* The nominal (empty overlay) campaign fixes the shared strike list
     every sampled corner replays, and is the flip reference of the
     report.  It is deterministic, so workers re-derive the identical
     list without any coordination. *)
  let nominal = Campaign.run cfg tech c ~drives in
  let sites =
    List.map (fun (v : Campaign.verdict) -> v.Campaign.vd_site) nominal.Campaign.cam_verdicts
  in
  let overlay_of k = Sampler.sample ~stress_hours sigmas ~seed ~index:k c in
  let sample_cfg k = { cfg with Campaign.overlay = overlay_of k; sites = Some sites } in
  (* One sample's campaign, optionally journaled/resumed — the exact
     serial-faults journaling discipline, so a zero-sigma sample's
     journal is byte-identical to the plain faults one. *)
  let run_sample ?jpath ?(resume = false) k =
    let scfg = sample_cfg k in
    let completed, quarantined, writer =
      match jpath with
      | None -> ([], [], None)
      | Some p ->
          if resume && Sys.file_exists p then begin
            let h, indexed = Journal.load p in
            Journal.check h ~circuit:(N.name c) scfg;
            let entries = Journal.contiguous ~first:0 indexed in
            let completed, quarantined = Journal.partition ~first:0 entries in
            (completed, quarantined, Some (Journal.open_append p))
          end
          else
            ( [],
              [],
              Some (Journal.open_new p (Journal.header_of ~circuit:(N.name c) scfg)) )
    in
    let on_verdict = Option.map (fun w idx v -> Journal.write w idx v) writer in
    let campaign =
      Campaign.run ?on_verdict { scfg with Campaign.completed; quarantined } tech c ~drives
    in
    (match writer with Some w -> Journal.close w | None -> ());
    campaign
  in
  match sample_worker with
  | Some k ->
      (* ----- internal worker (spawned by --jobs): one sample into its
         own journal, no report ----- *)
      let base =
        match (journal_path, resume_path) with
        | Some p, None | None, Some p -> p
        | None, None -> usage_diag "a --sample worker needs --journal or --resume"
        | Some _, Some _ -> assert false
      in
      if k < 0 || k >= samples then
        usage_diag (Printf.sprintf "--sample %d out of range for %d samples" k samples);
      let campaign =
        run_sample ~jpath:(sample_journal base k) ~resume:(resume_path <> None) k
      in
      Printf.eprintf "vary: sample %d: %s\n%!" k (Fault_report.summary campaign);
      0
  | None ->
      let jobs = if jobs = 0 then Shard.available_cores () else jobs in
      let sample_results, cleanup =
        if jobs > 1 && samples > 0 then begin
          (* ----- parallel parent: one worker process per sample, at
             most [jobs] in flight, each journaling base.sK; the parent
             reloads and revalidates every journal (overlay fingerprint
             included) before aggregating ----- *)
          let base, user_journal =
            match (journal_path, resume_path) with
            | Some p, None | None, Some p -> (p, true)
            | None, None -> (Filename.temp_file "halotis-vary" ".journal", false)
            | Some _, Some _ -> assert false
          in
          let resuming = resume_path <> None in
          let worker_argv k =
            [ Sys.executable_name; "vary"; path; "--stim"; stim_path ]
            @ [ "--engine"; Campaign.engine_to_string engine ]
            @ [ "-n"; string_of_int n; "--seed"; string_of_int seed ]
            @ [ "--width"; farg width; "--slope"; farg slope ]
            @ [ "--t-stop"; farg horizon ]
            @ [ "--samples"; string_of_int samples ]
            @ [ "--sigma-device"; farg sigma_device ]
            @ [ "--sigma-chip"; farg sigma_chip ]
            @ [ "--sigma-lot"; farg sigma_lot ]
            @ [ "--stress-hours"; farg stress_hours ]
            @ (match liberty with Some p -> [ "--liberty"; p ] | None -> [])
            @ [ "--sample"; string_of_int k ]
            @ [
                (if resuming && Sys.file_exists (sample_journal base k) then "--resume"
                 else "--journal");
                base;
              ]
          in
          Printf.eprintf "vary: %d samples across %d workers\n%!" samples jobs;
          let rec waves k acc =
            if k >= samples then acc
            else begin
              let batch = min jobs (samples - k) in
              let ws =
                List.init batch (fun i ->
                    let idx = k + i in
                    Shard.spawn ~argv:(worker_argv idx) ~index:idx
                      ~range:(idx, idx + 1)
                      ~journal:(sample_journal base idx) ())
              in
              waves (k + batch) (acc @ Shard.wait_all ws)
            end
          in
          let results = waves 0 [] in
          let failed =
            List.filter (fun (_, st) -> Shard.status_exit_code st <> 0) results
          in
          if failed <> [] then begin
            List.iter
              (fun ((w : Shard.worker), st) ->
                Printf.eprintf "vary: sample %d worker: %s\n" w.Shard.wk_index
                  (Shard.status_to_string st))
              failed;
            Printf.eprintf
              "vary: %d of %d sample workers failed; finished samples survive in \
               %s.sK — re-run with --resume %s to finish\n"
              (List.length failed) samples base base;
            exit (Shard.exit_code results)
          end;
          let loaded =
            List.init samples (fun k ->
                let jpath = sample_journal base k in
                let h, indexed = Journal.load jpath in
                Journal.check h ~circuit:(N.name c) (sample_cfg k);
                let entries = Journal.contiguous ~first:0 indexed in
                let completed, _ = Journal.partition ~first:0 entries in
                (k, Param_overlay.fingerprint (overlay_of k), completed))
          in
          let cleanup () =
            if not user_journal then begin
              for k = 0 to samples - 1 do
                let p = sample_journal base k in
                if Sys.file_exists p then Sys.remove p
              done;
              if Sys.file_exists base then Sys.remove base
            end
          in
          (loaded, cleanup)
        end
        else begin
          (* ----- serial: run every sample in-process ----- *)
          let base =
            match (journal_path, resume_path) with
            | Some p, None | None, Some p -> Some p
            | None, None -> None
            | Some _, Some _ -> assert false
          in
          let resuming = resume_path <> None in
          let results =
            List.init samples (fun k ->
                let campaign =
                  run_sample
                    ?jpath:(Option.map (fun b -> sample_journal b k) base)
                    ~resume:resuming k
                in
                Printf.eprintf "vary: sample %d/%d: %s\n%!" (k + 1) samples
                  (Fault_report.summary campaign);
                ( k,
                  Param_overlay.fingerprint (overlay_of k),
                  campaign.Campaign.cam_verdicts ))
          in
          (results, fun () -> ())
        end
      in
      (* TTF sweep: age the whole circuit along the stress-hours ladder
         until the reference pulse — the first strike the fresh circuit
         electrically masked — becomes an observable soft error. *)
      let ttf_result =
        if not ttf then None
        else
          let ref_verdict =
            List.find_opt
              (fun (v : Campaign.verdict) ->
                v.Campaign.vd_outcome = Campaign.Electrically_masked)
              nominal.Campaign.cam_verdicts
          in
          match ref_verdict with
          | None ->
              prerr_endline
                "vary: --ttf: the nominal campaign has no electrically masked site to \
                 use as a reference pulse; skipping the sweep";
              None
          | Some v ->
              let site = v.Campaign.vd_site in
              let probe ~stress_hours =
                let scfg =
                  {
                    cfg with
                    Campaign.overlay =
                      Aging.overlay ~stress_hours ~gates:(N.gate_count c);
                    sites = Some [ site ];
                  }
                in
                let r = Campaign.run scfg tech c ~drives in
                match r.Campaign.cam_verdicts with
                | [ v ] -> v.Campaign.vd_outcome = Campaign.Propagated
                | _ -> false
              in
              Some (Sweep.run ~probe ())
      in
      let report =
        Vary_report.make ~circuit:(N.name c)
          ~engine:(Campaign.engine_to_string engine)
          ~seed ~sigmas ~stress_hours ~nominal:nominal.Campaign.cam_verdicts
          ~samples:sample_results ?ttf:ttf_result ()
      in
      cleanup ();
      (match format with
      | `Json -> print_endline (Vary_report.to_string report)
      | `Text -> print_string (Vary_report.to_text report));
      0

(* --- export-verilog --- *)

let run_export path output =
  let c = or_die (load_circuit path) in
  let text = Halotis_netlist.Verilog.to_string c in
  (match output with
  | Some p ->
      let oc = open_out p in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" p
  | None -> print_string text);
  0

(* --- report-timing --- *)

let run_timing path input_slope liberty period =
  let tech = load_tech liberty in
  let c = or_die (load_circuit path) in
  let t = Sta.analyze ~input_slope tech c in
  Format.printf "%a@." N.pp_summary c;
  Printf.printf "worst arrival: %.1f ps%s\n" (Sta.worst t)
    (match Sta.worst_output t with
    | Some s -> " at output " ^ N.signal_name c s
    | None -> "");
  print_endline "critical path:";
  Format.printf "%a" (Sta.pp_path c) (Sta.critical_path t);
  print_endline "per-output arrivals:";
  List.iter
    (fun sid ->
      let a = Sta.arrival t sid in
      let v = Float.max a.Sta.rise_at a.Sta.fall_at in
      if v > neg_infinity then
        Printf.printf "  %-12s %.1f ps\n" (N.signal_name c sid) v
      else Printf.printf "  %-12s (static)\n" (N.signal_name c sid))
    (N.primary_outputs c);
  (match period with
  | None -> ()
  | Some p ->
      Printf.printf "slack at a %.0f ps period (min period %.1f ps):\n" p
        (Sta.min_period t);
      List.iter
        (fun (sid, sl) ->
          Printf.printf "  %-12s %8.1f ps%s\n" (N.signal_name c sid) sl
            (if sl < 0. then "  VIOLATED" else ""))
        (Sta.slack t ~period:p));
  0

(* --- explain --- *)

let run_explain path stim_path signal_name at t_stop =
  let c = or_die (load_circuit path) in
  let stim = or_die (load_stimfile stim_path) in
  let drives = bind_stim stim c in
  let sid =
    match N.find_signal c signal_name with
    | Some s -> s
    | None ->
        prerr_endline ("halotis: unknown signal " ^ signal_name);
        exit 1
  in
  let horizon = match t_stop with Some t -> t | None -> 100_000. in
  let r =
    (* causality tracing is a DDM-engine feature, but the run is still
       configured through the one facade *)
    match
      Sim.iddm (Sim.run Sim.Ddm (Sim.spec ~drives ~t_stop:horizon ~trace:true ~tech:DL.tech c))
    with
    | Some r -> r
    | None -> assert false
  in
  let at =
    match at with
    | Some t -> t
    | None -> (
        (* default: the signal's last edge *)
        match List.rev (Digital.edges r.Iddm.waveforms.(sid) ~vt) with
        | e :: _ -> e.Digital.at
        | [] -> horizon)
  in
  let chain = Iddm.explain r ~signal:sid ~at in
  if chain = [] then begin
    Printf.printf "%s has no traced activity at %.1f ps\n" signal_name at;
    0
  end
  else begin
    Printf.printf "causality chain for %s at %.1f ps (input side first):\n" signal_name at;
    Format.printf "%a" (Iddm.pp_explanation r) chain;
    0
  end

(* --- hazards --- *)

let run_hazards path input_slope =
  let c = or_die (load_circuit path) in
  let module Hazard = Halotis_sta.Hazard in
  let h = Hazard.analyze ~input_slope DL.tech c in
  let sites = Hazard.sites h in
  let timing = Hazard.timing_sites h in
  Format.printf "%a@." N.pp_summary c;
  Printf.printf "potential glitch sites: %d of %d gates (%d timing, %d function-only)\n"
    (List.length sites) (N.gate_count c) (List.length timing)
    (List.length sites - List.length timing);
  Format.printf "%a" (Hazard.pp_sites c) sites;
  0

(* --- survival --- *)

let run_survival path width slope engine liberty format =
  let tech = load_tech liberty in
  let c = or_die (load_circuit path) in
  let module Survival = Halotis_sta.Survival in
  let kind = match engine with `Ddm -> DM.Ddm | `Cdm -> DM.Cdm in
  let s = Survival.analyze ~width ~slope ~kind tech c in
  (match format with
  | `Json -> print_endline (Json.to_string ~indent:true (Survival.to_json s))
  | `Text -> Format.printf "%a" Survival.pp_text s);
  0

(* --- equiv --- *)

let run_equiv path_a path_b =
  let a = or_die (load_circuit path_a) in
  let b = or_die (load_circuit path_b) in
  let module Equiv = Halotis_netlist.Equiv in
  let verdict = Equiv.check a b in
  Format.printf "%a@." Equiv.pp_verdict verdict;
  match verdict with Equiv.Equivalent -> 0 | Equiv.Counterexample _ | Equiv.Incompatible _ -> 1

(* --- diff-vcd --- *)

let run_diff_vcd path_a path_b tolerance =
  let load path =
    match Halotis_wave.Vcd_reader.parse_file path with
    | Ok t -> t
    | Error e ->
        Format.eprintf "halotis: %s: %a@." path Halotis_wave.Vcd_reader.pp_error e;
        exit 1
    | exception Sys_error m ->
        prerr_endline ("halotis: " ^ m);
        exit 1
  in
  let a = load path_a and b = load path_b in
  let module Vr = Halotis_wave.Vcd_reader in
  let module Cmp = Halotis_wave.Compare in
  let reports =
    List.filter_map
      (fun (sa : Vr.signal) ->
        match Vr.find b sa.Vr.rd_name with
        | Some sb ->
            Some
              ( sa.Vr.rd_name,
                Cmp.edges ~tolerance ~reference:sa.Vr.rd_edges ~candidate:sb.Vr.rd_edges )
        | None ->
            Printf.printf "%-16s only in %s\n" sa.Vr.rd_name path_a;
            None)
      a.Vr.signals
  in
  List.iter
    (fun (sb : Vr.signal) ->
      if Vr.find a sb.Vr.rd_name = None then
        Printf.printf "%-16s only in %s\n" sb.Vr.rd_name path_b)
    b.Vr.signals;
  List.iter
    (fun (name, r) -> Format.printf "%-16s %a@." name Cmp.pp r)
    reports;
  let merged = Cmp.merge (List.map snd reports) in
  Format.printf "overall: %a (agreement %.2f)@." Cmp.pp merged (Cmp.agreement merged);
  if Cmp.perfect merged then 0 else 1

(* --- characterize --- *)

let run_characterize output =
  let kinds = Halotis_logic.Gate_kind.all_basic in
  (match output with
  | Some p ->
      Lib_writer.write_file p DL.tech ~kinds;
      Printf.printf "wrote %s (%d cells)\n" p (List.length kinds)
  | None -> print_string (Lib_writer.of_tech DL.tech ~kinds));
  0

(* --- cmdliner wiring --- *)

let circuit_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CIRCUIT" ~doc:"HNL netlist file.")

let stim_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "stim"; "s" ] ~docv:"STIM" ~doc:"HSV stimulus file.")

let liberty_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "liberty" ] ~docv:"LIB"
        ~doc:"Liberty file: fit the delay model coefficients from its NLDM tables.")

let t_stop_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "t-stop" ] ~docv:"PS" ~doc:"Simulation horizon in picoseconds.")

let rule_id_conv =
  let parse s =
    match Rule.find s with
    | Some r -> Ok r.Rule.id
    | None -> Error (`Msg (Printf.sprintf "unknown rule %S (see --list-rules)" s))
  in
  Arg.conv (parse, Format.pp_print_string)

let severity_override_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg "expected RULE=LEVEL, e.g. NL005=error")
    | Some i -> (
        let id = String.sub s 0 i in
        let level = String.sub s (i + 1) (String.length s - i - 1) in
        match (Rule.find id, Finding.severity_of_string (String.lowercase_ascii level)) with
        | Some r, Some sev -> Ok (r.Rule.id, sev)
        | None, _ -> Error (`Msg (Printf.sprintf "unknown rule %S (see --list-rules)" id))
        | _, None ->
            Error (`Msg (Printf.sprintf "unknown level %S (error, warning or info)" level)))
  in
  let print fmt (id, sev) =
    Format.fprintf fmt "%s=%s" id (Finding.severity_to_string sev)
  in
  Arg.conv (parse, print)

let lint_cmd =
  let doc = "rule-based static analysis of a netlist, its stimuli and libraries" in
  let circuit =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"CIRCUIT" ~doc:"HNL or ISCAS netlist file.")
  in
  let stim =
    Arg.(
      value
      & opt (some file) None
      & info [ "stim"; "s" ] ~docv:"STIM" ~doc:"Also lint this HSV stimulus file.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"text (findings on stderr) or json (report document on stdout).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit 1 when warnings remain.")
  in
  let disables =
    Arg.(
      value
      & opt_all rule_id_conv []
      & info [ "disable" ] ~docv:"RULE" ~doc:"Disable a rule (repeatable).")
  in
  let enables =
    Arg.(
      value
      & opt_all rule_id_conv []
      & info [ "enable" ] ~docv:"RULE"
          ~doc:"Re-enable a rule after $(b,--disable) (repeatable).")
  in
  let severities =
    Arg.(
      value
      & opt_all severity_override_conv []
      & info [ "severity" ] ~docv:"RULE=LEVEL"
          ~doc:"Override a rule's severity, e.g. NL005=error (repeatable).")
  in
  let fanout_threshold =
    Arg.(
      value
      & opt int Rule.default_config.Rule.fanout_threshold
      & info [ "fanout-threshold" ] ~docv:"N" ~doc:"Load-pin budget for NL005.")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule registry and exit.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run_lint $ circuit $ stim $ liberty_arg $ format $ strict $ disables $ enables
      $ severities $ fanout_threshold $ list_rules)

let check_cmd =
  let doc = "structural checks on an HNL netlist (alias for lint with default rules)" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run_check $ circuit_arg)

let generate_cmd =
  let doc = "emit a generated circuit as HNL" in
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND"
          ~doc:"mult, mult-nand, wallace, rca, chain, fig1, latch, latch-glitch or random.")
  in
  let m = Arg.(value & opt int 4 & info [ "m" ] ~docv:"N" ~doc:"Multiplicand bits.") in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Multiplier bits / chain length.")
  in
  let bits = Arg.(value & opt int 4 & info [ "bits" ] ~docv:"N" ~doc:"Adder width.") in
  let gates = Arg.(value & opt int 100 & info [ "gates" ] ~docv:"N" ~doc:"Random gates.") in
  let inputs = Arg.(value & opt int 8 & info [ "inputs" ] ~docv:"N" ~doc:"Random inputs.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("hnl", `Hnl); ("bench", `Bench) ]) `Hnl
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: hnl (default) or bench.")
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run_generate $ kind $ m $ n $ bits $ gates $ inputs $ seed $ output $ format)

let model_arg =
  let model_conv =
    Arg.enum
      [
        ("ddm", `Engine Sim.Ddm);
        ("cdm", `Engine Sim.Cdm);
        ("classic", `Engine Sim.Classic_inertial);
        ("analog", `Analog);
      ]
  in
  Arg.(
    value
    & opt model_conv (`Engine Sim.Ddm)
    & info [ "model"; "m" ] ~docv:"MODEL" ~doc:"ddm (default), cdm, classic or analog.")

(* Guardrail flags shared in spirit with doc/robustness.md: budgets
   stop a run with exit code 3, the watchdog with 4. *)
let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Stop after N processed events (exit 3; outputs are marked partial).")

let max_wall_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-wall" ] ~docv:"SECONDS" ~doc:"Wall-clock budget for the run (exit 3).")

let max_queue_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-queue" ] ~docv:"N" ~doc:"Event-queue occupancy cap (exit 3).")

let max_sim_time_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-sim-time" ] ~docv:"PS"
        ~doc:"Simulated-time budget, independent of --t-stop (exit 3).")

let simulate_cmd =
  let doc = "simulate a netlist under a stimulus file" in
  let vcd =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD dump.")
  in
  let diagram =
    Arg.(value & flag & info [ "diagram"; "d" ] ~doc:"Print an ASCII timing diagram.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Print switching activity, energy and pulse-width statistics (ddm/cdm only).")
  in
  let watchdog =
    Arg.(
      value & flag
      & info [ "watchdog" ]
          ~doc:"Halt when a signal oscillates (exit 4, names the feedback loop).")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Watchdog in degrade mode: freeze the oscillating feedback loop to x and \
             keep simulating the rest (implies --watchdog).")
  in
  let wd_window =
    Arg.(
      value
      & opt float Watchdog.default_window
      & info [ "watchdog-window" ] ~docv:"PS"
          ~doc:"Sliding simulated-time window for the oscillation watchdog.")
  in
  let wd_threshold =
    Arg.(
      value
      & opt int Watchdog.default_threshold
      & info [ "watchdog-threshold" ] ~docv:"N"
          ~doc:"Events per window on one signal that count as oscillation.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a JSON result document on stdout (stats, stop reason, partial flag) \
             instead of the text summary (ddm/cdm/classic).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "When a guardrail stops the run early, serialize the committed waveform \
             prefix (every signal, lossless hex floats) plus the stop reason to \
             $(docv) — the durable record of a budget-stopped run (ddm/cdm only).")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run_simulate $ circuit_arg $ stim_arg $ model_arg $ t_stop_arg $ vcd $ diagram
      $ liberty_arg $ report $ max_events_arg $ max_wall_arg $ max_queue_arg
      $ max_sim_time_arg $ watchdog $ degrade $ wd_window $ wd_threshold $ json
      $ checkpoint)

let faults_cmd =
  let doc = "SET fault-injection campaign: soft-error robustness analysis" in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("ddm", Campaign.Ddm);
               ("cdm", Campaign.Cdm);
               ("classic", Campaign.Classic_inertial);
             ])
          Campaign.Ddm
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"ddm (default), cdm or classic.")
  in
  let n =
    Arg.(
      value & opt int 100
      & info [ "n"; "injections" ] ~docv:"N" ~doc:"Number of PRNG-sampled injections.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign PRNG seed.")
  in
  let width =
    Arg.(
      value & opt float 150.
      & info [ "width" ] ~docv:"PS" ~doc:"SET pulse width in picoseconds.")
  in
  let slope =
    Arg.(
      value & opt float 100.
      & info [ "slope" ] ~docv:"PS" ~doc:"SET ramp slope in picoseconds.")
  in
  let exhaustive =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:"Strike every gate output on a time grid instead of sampling.")
  in
  let grid =
    Arg.(
      value & opt int 8
      & info [ "grid" ] ~docv:"N" ~doc:"Grid points per node under $(b,--exhaustive).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"text or json report on stdout.")
  in
  let vcd_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd-dir" ] ~docv:"DIR"
          ~doc:"Re-run each propagated strike and dump its waveforms as VCD here.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append every verdict to this checkpoint journal (fsynced) so an \
             interrupted campaign can be resumed with $(b,--resume).")
  in
  let resume =
    (* not Arg.file: under --jobs the merged journal may not exist yet —
       only the shard files base.K do — and the worker resume path wants
       Journal.load's own diagnostics for a missing file. *)
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a campaign from a checkpoint journal: completed sites are \
             skipped, new verdicts keep appending to the same file, and the final \
             report is byte-identical to an uninterrupted run. With $(b,--jobs), \
             FILE is the base path whose per-worker shard journals (FILE.0, \
             FILE.1, ...) are resumed.")
  in
  let limit_sites =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-sites" ] ~docv:"K"
          ~doc:
            "Simulate at most K fresh sites this invocation, then park (exit 3, no \
             report); combine with $(b,--journal)/$(b,--resume) to chunk a long \
             campaign.")
  in
  let site_max_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "site-max-events" ] ~docv:"N"
          ~doc:
            "Per-injection event budget: a run that trips it gets a timed-out \
             verdict instead of stalling the campaign.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the campaign across N worker processes, each simulating a \
             disjoint site range and journaling its verdicts; the merged report \
             is byte-identical to $(b,--jobs) 1 with the same seed.  N=0 \
             auto-detects the available cores (getconf, falling back to \
             /proc/cpuinfo).  Default: 1 (serial).")
  in
  let shard =
    let parse s =
      match Shard.parse_spec s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "invalid shard spec %S: expected K/N with 0 <= K < N" s))
    in
    let print fmt p = Format.pp_print_string fmt (Shard.spec_to_string p) in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "shard" ] ~docv:"K/N"
          ~doc:
            "Internal (spawned by $(b,--jobs)): run as worker K of N, simulating \
             only this shard's site range into its own journal; no report is \
             rendered.")
  in
  let range =
    let parse s =
      match String.index_opt s ':' with
      | Some i -> (
          let lo = String.sub s 0 i in
          let hi = String.sub s (i + 1) (String.length s - i - 1) in
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when 0 <= lo && lo < hi -> Ok (lo, hi)
          | _ -> Error (`Msg (Printf.sprintf "invalid range %S: expected LO:HI with 0 <= LO < HI" s))
          )
      | None -> Error (`Msg (Printf.sprintf "invalid range %S: expected LO:HI" s))
    in
    let print fmt (lo, hi) = Format.fprintf fmt "%d:%d" lo hi in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "range" ] ~docv:"LO:HI"
          ~doc:
            "Internal (spawned by the campaign supervisor): run as a worker \
             owning global site indices [LO, HI), journaling each verdict \
             fsynced with a heartbeat cursor into $(b,--journal); an existing \
             chunk journal is resumed automatically.  No report is rendered.")
  in
  let supervise =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]) `Auto
      & info [ "supervise" ] ~docv:"auto|on|off"
          ~doc:
            "Fault-tolerant campaign supervision: split the site enumeration \
             into chunks dispatched to a bounded worker pool, heartbeat each \
             worker's journal progress, kill and re-queue stalled workers with \
             exponential backoff, and quarantine sites that repeatedly crash \
             or hang workers (the campaign then completes $(i,degraded), exit \
             code 5, with the quarantined sites listed in the report).  auto \
             (default) supervises whenever $(b,--jobs) > 1; off restores the \
             one-shot spawn/wait sharding.")
  in
  let worker_timeout =
    Arg.(
      value & opt float 30.
      & info [ "worker-timeout" ] ~docv:"S"
          ~doc:
            "Supervision: seconds a worker may go without journal progress \
             before it is killed and its chunk re-queued.  Default: 30.")
  in
  let max_retries =
    Arg.(
      value & opt int 10
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Supervision: per-chunk failure cap; a chunk that crashes or \
             stalls more than N times aborts the campaign.  Quarantining a \
             poison site resets the chunk's count.  Default: 10.")
  in
  let chunk_sites =
    Arg.(
      value & opt int 0
      & info [ "chunk-sites" ] ~docv:"K"
          ~doc:
            "Supervision: sites per work-queue chunk.  0 (default) picks \
             about four chunks per worker.")
  in
  let poison_after =
    Arg.(
      value & opt int 3
      & info [ "poison-after" ] ~docv:"N"
          ~doc:
            "Supervision: quarantine a site after it is the blame site of N \
             consecutive failures of its chunk.  Default: 3.")
  in
  let prune =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("static", `Static) ]) `None
      & info [ "prune" ] ~docv:"MODE"
          ~doc:
            "static: skip sites whose masking verdict the pulse-survival analysis \
             proves from the baseline alone (journaled as pruned; taxonomy totals \
             are identical to an unpruned run). Default: none.")
  in
  let incremental =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "incremental" ] ~docv:"on|off"
          ~doc:
            "Incremental cone re-simulation: answer each site by re-simulating \
             only the strike's static fanout cone against the baseline, falling \
             back to a full per-site re-run whenever the shortcut cannot be \
             proven exact.  Reports and journals are byte-identical either way; \
             only the wall clock changes.  Default: on.")
  in
  let keep_shards =
    Arg.(
      value & flag
      & info [ "keep-shards" ]
          ~doc:
            "With $(b,--jobs), keep the per-worker shard journals (FILE.0, FILE.1, \
             ...) after a successful merge instead of deleting them — e.g. to audit \
             each worker's verdict stream.  Failed runs always keep them.")
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run_faults $ circuit_arg $ stim_arg $ engine $ n $ seed $ width $ slope
      $ t_stop_arg $ exhaustive $ grid $ format $ vcd_dir $ liberty_arg $ journal
      $ resume $ limit_sites $ site_max_events $ jobs $ shard $ range $ supervise
      $ worker_timeout $ max_retries $ chunk_sites $ poison_after $ prune
      $ incremental $ keep_shards)

let vary_cmd =
  let doc = "Monte-Carlo variation & aging campaigns over sampled parameter corners" in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("ddm", Campaign.Ddm);
               ("cdm", Campaign.Cdm);
               ("classic", Campaign.Classic_inertial);
             ])
          Campaign.Ddm
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"ddm (default), cdm or classic.")
  in
  let n =
    Arg.(
      value & opt int 100
      & info [ "n"; "injections" ] ~docv:"N"
          ~doc:"PRNG-sampled strikes per sample (the shared strike list).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed shared by the strike list and the corner sampler.")
  in
  let width =
    Arg.(
      value & opt float 150.
      & info [ "width" ] ~docv:"PS" ~doc:"SET pulse width in picoseconds.")
  in
  let slope =
    Arg.(
      value & opt float 100.
      & info [ "slope" ] ~docv:"PS" ~doc:"SET ramp slope in picoseconds.")
  in
  let samples =
    Arg.(
      value & opt int 20
      & info [ "samples" ] ~docv:"K"
          ~doc:"Monte-Carlo samples (circuit instances) to draw.  Default: 20.")
  in
  let sigma_device =
    Arg.(
      value & opt float 0.
      & info [ "sigma-device" ] ~docv:"S"
          ~doc:"Per-gate (device) relative parameter spread, e.g. 0.05 for 5 %.")
  in
  let sigma_chip =
    Arg.(
      value & opt float 0.
      & info [ "sigma-chip" ] ~docv:"S"
          ~doc:"Per-sample (chip) relative parameter spread.")
  in
  let sigma_lot =
    Arg.(
      value & opt float 0.
      & info [ "sigma-lot" ] ~docv:"S"
          ~doc:"Per-lot relative parameter spread (8 consecutive samples share a lot).")
  in
  let stress_hours =
    Arg.(
      value & opt float 0.
      & info [ "stress-hours" ] ~docv:"H"
          ~doc:"Virtual aging stress applied to every sample's corner.")
  in
  let ttf =
    Arg.(
      value & flag
      & info [ "ttf" ]
          ~doc:
            "Time-to-failure sweep: age the circuit along a geometric \
             stress-hours ladder until the first electrically masked reference \
             pulse starts propagating.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run samples across N worker processes (each sample's campaign stays \
             serial); the report is byte-identical to $(b,--jobs) 1 with the same \
             seed.  N=0 auto-detects the available cores.  Default: 1.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"BASE"
          ~doc:
            "Journal each sample's verdicts to BASE.sK (the serial faults journal \
             format, overlay-fingerprinted) so an interrupted run can be resumed \
             with $(b,--resume).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"BASE"
          ~doc:
            "Resume from per-sample journals BASE.sK: completed verdicts are \
             kept, the rest simulated, and the final report is byte-identical to \
             an uninterrupted run.")
  in
  let sample_worker =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample" ] ~docv:"K"
          ~doc:
            "Internal (spawned by $(b,--jobs)): run only sample K into its own \
             journal; no report is rendered.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"text or json report on stdout.")
  in
  Cmd.v (Cmd.info "vary" ~doc)
    Term.(
      const run_vary $ circuit_arg $ stim_arg $ engine $ seed $ n $ width $ slope
      $ t_stop_arg $ samples $ sigma_device $ sigma_chip $ sigma_lot $ stress_hours
      $ ttf $ jobs $ journal $ resume $ liberty_arg $ sample_worker $ format)

let export_cmd =
  let doc = "export a netlist as structural Verilog" in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "export-verilog" ~doc) Term.(const run_export $ circuit_arg $ output)

let timing_cmd =
  let doc = "static timing analysis (conventional delay model)" in
  let slope =
    Arg.(
      value & opt float 100.
      & info [ "input-slope" ] ~docv:"PS" ~doc:"Input ramp slope in picoseconds.")
  in
  let period =
    Arg.(
      value
      & opt (some float) None
      & info [ "period" ] ~docv:"PS" ~doc:"Report per-output slack against this clock period.")
  in
  Cmd.v (Cmd.info "report-timing" ~doc)
    Term.(const run_timing $ circuit_arg $ slope $ liberty_arg $ period)

let explain_cmd =
  let doc = "trace the event chain behind a signal's activity" in
  let signal =
    Arg.(
      required
      & opt (some string) None
      & info [ "signal" ] ~docv:"NAME" ~doc:"Signal to explain.")
  in
  let at =
    Arg.(
      value
      & opt (some float) None
      & info [ "at" ] ~docv:"PS" ~doc:"Instant of interest (default: the signal's last edge).")
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run_explain $ circuit_arg $ stim_arg $ signal $ at $ t_stop_arg)

let hazards_cmd =
  let doc = "static hazard (glitch-site) analysis" in
  let slope =
    Arg.(
      value & opt float 100.
      & info [ "input-slope" ] ~docv:"PS" ~doc:"Input ramp slope in picoseconds.")
  in
  Cmd.v (Cmd.info "hazards" ~doc) Term.(const run_hazards $ circuit_arg $ slope)

let survival_cmd =
  let doc = "static SET pulse-survival map (vulnerability bounds per gate and output)" in
  let width =
    Arg.(
      value & opt float 150.
      & info [ "width" ] ~docv:"PS" ~doc:"Canonical SET pulse width in picoseconds.")
  in
  let slope =
    Arg.(
      value & opt float 100.
      & info [ "slope" ] ~docv:"PS" ~doc:"Canonical SET ramp slope in picoseconds.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("ddm", `Ddm); ("cdm", `Cdm) ]) `Ddm
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Delay model to bound the pulse transfer with: ddm (default) or cdm.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"text or json map on stdout.")
  in
  Cmd.v (Cmd.info "survival" ~doc)
    Term.(const run_survival $ circuit_arg $ width $ slope $ engine $ liberty_arg $ format)

let equiv_cmd =
  let doc = "exhaustive combinational equivalence check" in
  let file position docv =
    Arg.(required & pos position (some file) None & info [] ~docv ~doc:"Netlist file.")
  in
  Cmd.v (Cmd.info "equiv" ~doc) Term.(const run_equiv $ file 0 "A" $ file 1 "B")

let diff_vcd_cmd =
  let doc = "compare two VCD dumps edge-for-edge" in
  let file position docv =
    Arg.(required & pos position (some file) None & info [] ~docv ~doc:"VCD file.")
  in
  let tolerance =
    Arg.(
      value & opt float 100.
      & info [ "tolerance" ] ~docv:"PS" ~doc:"Edge matching window in picoseconds.")
  in
  Cmd.v (Cmd.info "diff-vcd" ~doc)
    Term.(const run_diff_vcd $ file 0 "A" $ file 1 "B" $ tolerance)

let characterize_cmd =
  let doc = "export the built-in technology as a Liberty NLDM library" in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "characterize" ~doc) Term.(const run_characterize $ output)

let compare_cmd =
  let doc = "run all four engines and compare output activity" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run_compare $ circuit_arg $ stim_arg $ t_stop_arg)

(* --- serve / client --- *)

let serve_config cache_size max_events max_transitions no_watchdog liberty =
  let d = Server.default_config () in
  (* 0 means "no limit" for both budgets; absent keeps the server default *)
  let cap dflt = function Some 0 -> None | Some n -> Some n | None -> dflt in
  {
    Server.cf_cache_size = cache_size;
    cf_max_events = cap d.Server.cf_max_events max_events;
    cf_max_transitions = cap d.Server.cf_max_transitions max_transitions;
    cf_watchdog = not no_watchdog;
    cf_tech = load_tech liberty;
    cf_overlay = d.Server.cf_overlay;
  }

let run_serve socket cache_size max_events max_transitions no_watchdog liberty =
  let server =
    Server.create (serve_config cache_size max_events max_transitions no_watchdog liberty)
  in
  (match socket with
  | Some path ->
      Printf.eprintf "halotis: serving on %s\n%!" path;
      Server.serve_socket server ~path
  | None -> Server.serve_stdio server);
  0

(* The client re-encodes each script request canonically (ids assigned
   1, 2, 3, ... in script order), so transcripts are deterministic no
   matter how the script file is formatted. *)
let client_lines script_path =
  let text =
    try
      let ic = open_in_bin script_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> die_diag (io_diag m)
  in
  let requests =
    List.filter
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  List.mapi
    (fun i line ->
      let id = i + 1 in
      match Json.parse line with
      | Error m ->
          die_diag (Diag.make ~code:"parse" ~file:script_path (Printf.sprintf "request %d: %s" id m))
      | Ok j -> (
          match Protocol.request_of_json j with
          | Error m ->
              die_diag
                (Diag.make ~code:"bad-request" ~file:script_path
                   (Printf.sprintf "request %d: %s" id m))
          | Ok req -> Protocol.request_to_line ~id req))
    requests

let run_client script_path socket cache_size max_events max_transitions no_watchdog
    liberty =
  let lines = client_lines script_path in
  match socket with
  | None ->
      (* in-process server: same dispatch path as the daemon, no I/O *)
      let server =
        Server.create
          (serve_config cache_size max_events max_transitions no_watchdog liberty)
      in
      let conn = Server.connect server in
      List.iter (fun line -> print_endline (Server.handle_line conn line)) lines;
      0
  | Some path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (e, _, _) ->
         die_diag
           (Diag.make ~code:"io"
              (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))));
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let rc =
        try
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc;
              print_endline (input_line ic))
            lines;
          0
        with End_of_file ->
          prerr_endline "halotis: server closed the connection";
          1
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      rc

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path (default: stdio).")

let serve_opts =
  let cache_size =
    Arg.(
      value & opt int 8
      & info [ "cache-size" ] ~docv:"N" ~doc:"Compiled-circuit LRU cache capacity.")
  in
  let max_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-events" ] ~docv:"N"
          ~doc:"Default per-session event budget (0: unlimited).")
  in
  let max_transitions =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-transitions" ] ~docv:"N"
          ~doc:"Default per-session transition (memory) budget (0: unlimited).")
  in
  let no_watchdog =
    Arg.(
      value & flag
      & info [ "no-watchdog" ] ~doc:"Disable the per-session oscillation watchdog default.")
  in
  (cache_size, max_events, max_transitions, no_watchdog)

let serve_cmd =
  let doc = "persistent simulation service (newline-delimited JSON protocol)" in
  let cache_size, max_events, max_transitions, no_watchdog = serve_opts in
  Cmd.v
    (Cmd.info "serve" ~doc
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Speaks the protocol documented in doc/serve.md: one JSON request per \
              line with sequential ids, starting with a $(b,hello); sessions load a \
              circuit once through the compiled-circuit cache and then advance, \
              change inputs, inject SET pulses and query waveforms interactively.";
         ])
    Term.(
      const run_serve $ socket_arg $ cache_size $ max_events $ max_transitions
      $ no_watchdog $ liberty_arg)

let client_cmd =
  let doc = "script a serve session from a request file" in
  let cache_size, max_events, max_transitions, no_watchdog = serve_opts in
  let script =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "File of JSON requests, one per line ($(b,#) comments and blank lines \
             ignored); ids are assigned sequentially in file order.")
  in
  Cmd.v
    (Cmd.info "client" ~doc
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays SCRIPT against a running daemon ($(b,--socket)) or an \
              in-process server (default), printing one response line per request — \
              a deterministic transcript suitable for golden tests.";
         ])
    Term.(
      const run_client $ script $ socket_arg $ cache_size $ max_events
      $ max_transitions $ no_watchdog $ liberty_arg)

let main_cmd =
  let doc = "HALOTIS: logic timing simulation with the inertial and degradation delay model" in
  Cmd.group (Cmd.info "halotis" ~version:"1.0.0" ~doc)
    [
      lint_cmd;
      check_cmd;
      generate_cmd;
      simulate_cmd;
      compare_cmd;
      serve_cmd;
      client_cmd;
      faults_cmd;
      vary_cmd;
      timing_cmd;
      survival_cmd;
      export_cmd;
      characterize_cmd;
      diff_vcd_cmd;
      hazards_cmd;
      equiv_cmd;
      explain_cmd;
    ]

(* The last line of defence: user-facing failures raised anywhere in a
   subcommand render as one diagnostic line, never a backtrace. *)
let () =
  exit
    (try Cmd.eval' main_cmd with
    | Diag.Fail d ->
        prerr_endline ("halotis: " ^ Diag.to_string d);
        1
    | Invalid_argument m ->
        let hint =
          if String.length m >= 9 && String.sub m 0 9 = "Dc.levels" then
            Some
              "the feedback loop has no stable DC point (a ring oscillator?); bound \
               the run with --max-events or enable --watchdog"
          else None
        in
        prerr_endline
          ("halotis: " ^ Diag.to_string (Diag.make ~code:"invalid-input" ?hint m));
        1)
