(* Emits doc/lint.md from the rule registry.  `dune runtest` diffs the
   committed file against this output, so the documentation cannot
   drift from the code; refresh with `dune promote`. *)

let () =
  print_string
    {|# `halotis lint` — rule reference

<!-- Generated from the registry in lib/lint/rule.ml by
     doc/gen_lint_doc.ml; refresh with `dune promote`. -->

`halotis lint CIRCUIT [--stim STIM.hsv] [--liberty LIB]` runs every
enabled rule over a netlist and, when given, its stimulus file and
Liberty library.  Findings print to stderr (text) or stdout (`--format
json`); the exit code is `2` when errors remain, `1` when warnings
remain under `--strict`, and `0` otherwise.

Rules are selected with `--disable RULE`, re-enabled with `--enable
RULE`, and re-levelled with `--severity RULE=error|warning|info`.
`--fanout-threshold N` configures NL005.  `halotis check` is a thin
alias running every rule at default severity.

The same netlist, tech and stimulus rules run as a pre-flight warning
pass inside `halotis simulate` and `halotis compare`.

## Rules

|};
  print_string (Halotis_lint.Lint.rules_markdown ())
