(* SUPERVISE — fault-tolerant campaign supervision (extension).

   The supervisor turns one-shot sharding into a work-queue of chunks
   with heartbeats, retry/backoff and poison quarantine.  Its costs are
   (a) a fixed overhead over unsupervised sharding — more process
   spawns (chunks instead of workers) and per-verdict fsyncs — and
   (b) recovery cost per injected worker death.  This experiment
   measures both: a supervised campaign with 0, 1 and 2 injected
   SIGKILLs (bounded by a chaos token directory) against the
   unsupervised `--supervise off` baseline, asserting every recovered
   report stays byte-identical. *)

open Common

let injections = 800
let seed = 42
let jobs = 2

let cli_exe =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "halotis_cli.exe"))

let data f =
  let local = Filename.concat "examples" (Filename.concat "data" f) in
  if Sys.file_exists local then local
  else
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." local)

(* A token directory holding exactly [kills] claimable files bounds how
   many times HALOTIS_CHAOS_KILL may fire across all workers. *)
let with_token_dir kills f =
  let dir = Filename.temp_file "halotis_chaos" ".tokens" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  for i = 0 to kills - 1 do
    let oc = open_out (Filename.concat dir (Printf.sprintf "token%d" i)) in
    close_out oc
  done;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let run_campaign ~mode out =
  let flags =
    match mode with `Unsupervised -> "--supervise off" | `Supervised _ -> "--supervise on"
  in
  let go env_prefix =
    let cmd =
      Printf.sprintf
        "%s%s faults %s --stim %s -n %d --seed %d --t-stop 20000 --format json \
         --jobs %d %s > %s 2> /dev/null"
        env_prefix (Filename.quote cli_exe)
        (Filename.quote (data "mult4x4.hnl"))
        (Filename.quote (data "mult4x4.hsv"))
        injections seed jobs flags (Filename.quote out)
    in
    let t0 = Unix.gettimeofday () in
    let status = Sys.command cmd in
    let dt = Unix.gettimeofday () -. t0 in
    if status <> 0 then
      failwith (Printf.sprintf "campaign (%s) exited %d" flags status);
    (dt, Digest.file out)
  in
  match mode with
  | `Supervised kills when kills > 0 ->
      (* each worker would die after 40 fresh verdicts, but only
         [kills] token claims succeed across the whole campaign *)
      with_token_dir kills (fun dir ->
          go
            (Printf.sprintf "HALOTIS_CHAOS_KILL=40 HALOTIS_CHAOS_TOKENS=%s "
               (Filename.quote dir)))
  | _ -> go ""

let run () =
  section "SUPERVISE -- fault-tolerant campaign supervision (extension)";
  Printf.printf
    "circuit mult4x4, %d injections, seed %d, --jobs %d; injected worker kills \
     bounded by a chaos token directory\n\n"
    injections seed jobs;
  let out = Filename.temp_file "halotis_supervise" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let base_t, base_digest = run_campaign ~mode:`Unsupervised out in
      let rows =
        List.map
          (fun kills -> (kills, run_campaign ~mode:(`Supervised kills) out))
          [ 0; 1; 2 ]
      in
      Printf.printf "  %-16s %10s %10s %s\n" "mode" "wall (s)" "overhead" "report";
      Printf.printf "  %-16s %10.3f %10s %s\n" "unsupervised" base_t "--" "baseline";
      List.iter
        (fun (kills, (dt, digest)) ->
          Printf.printf "  %-16s %10.3f %9.2fx %s\n"
            (Printf.sprintf "supervised+%dk" kills)
            dt (dt /. base_t)
            (if digest = base_digest then "identical" else "MISMATCH"))
        rows;
      let identical =
        List.for_all (fun (_, (_, digest)) -> digest = base_digest) rows
      in
      let sup0_t = fst (List.assoc 0 rows) in
      let sup2_t = fst (List.assoc 2 rows) in
      let data =
        ("faults_unsupervised_wall_s", base_t)
        :: List.map
             (fun (kills, (dt, _)) ->
               (Printf.sprintf "faults_supervised_%dkill_wall_s" kills, dt))
             rows
      in
      [
        Experiment.make ~data ~exp_id:"SUPERVISE"
          ~title:"Fault-tolerant campaign supervision (extension)"
          [
            Experiment.observation ~agrees:identical
              ~metric:"supervised report byte-identical to unsupervised (0/1/2 kills)"
              ~paper:"(determinism of the seeded campaign enumeration)"
              ~measured:(if identical then "identical in all three runs" else "MISMATCH")
              ();
            Experiment.observation
              ~metric:"supervision overhead, no failures"
              ~paper:"(expected: small constant from chunking + per-verdict fsync)"
              ~measured:
                (Printf.sprintf "%.3f s supervised vs %.3f s unsupervised (%.2fx)"
                   sup0_t base_t (sup0_t /. base_t))
              ();
            Experiment.observation
              ~metric:"recovery cost of injected worker deaths"
              ~paper:"(expected: bounded by one chunk of lost work per kill)"
              ~measured:
                (Printf.sprintf "+%.3f s for 2 kills over the 0-kill supervised run"
                   (sup2_t -. sup0_t))
              ();
          ];
      ])
