(* SCALE — event-throughput scaling (extension).

   The paper claims HALOTIS' CPU time is "very similar to those from
   other logic simulators" despite the richer stimulus treatment.  We
   measure events per second of the IDDM engine against the classical
   baseline on random circuits of growing size: both are event-driven,
   so the throughput should stay flat (no superlinear blow-up) and
   within a small factor of each other. *)

open Common

let workload gates seed =
  let c = G.random_combinational ~gates ~inputs:16 ~seed () in
  let rng = Halotis_util.Prng.create ~seed:(seed * 13) in
  let drives =
    List.map
      (fun s ->
        let changes =
          List.init 10 (fun k -> (2000. *. float_of_int (k + 1), Halotis_util.Prng.bool rng))
        in
        (s, Drive.of_levels ~slope:input_slope ~initial:(Halotis_util.Prng.bool rng) changes))
      (N.primary_inputs c)
  in
  (c, drives)

let throughput run events_of (c, drives) =
  (* earlier experiments leave a large major heap behind; compact so
     the measurement reflects the engine, not inherited GC debt *)
  Gc.compact ();
  (* warm up once, then time enough repeats to fill ~0.3 s *)
  let r0 = run c drives in
  let events = events_of r0 in
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    ignore (run c drives);
    incr reps
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (events, float_of_int (events * !reps) /. dt)

(* Circuit sizes, smallest first.  Overridable so CI can run a quick
   smoke (e.g. [HALOTIS_SCALE_SIZES=200]) with the same code path as
   the full sweep. *)
let sizes () =
  match Sys.getenv_opt "HALOTIS_SCALE_SIZES" with
  | None | Some "" -> [ 200; 1000; 5000 ]
  | Some s ->
      let parsed =
        List.filter_map
          (fun tok ->
            let tok = String.trim tok in
            if tok = "" then None
            else
              match int_of_string_opt tok with
              | Some n when n > 0 -> Some n
              | Some _ | None ->
                  invalid_arg
                    (Printf.sprintf "HALOTIS_SCALE_SIZES: bad size %S (want positive ints)"
                       tok))
          (String.split_on_char ',' s)
      in
      if parsed = [] then invalid_arg "HALOTIS_SCALE_SIZES: no sizes given"
      else List.sort_uniq compare parsed

let run () =
  section "SCALE -- event throughput vs circuit size (extension)";
  let sizes = sizes () in
  let results =
    List.map
      (fun gates ->
        let w = workload gates (gates + 1) in
        let ev_ddm, thr_ddm =
          throughput
            (fun c drives -> Iddm.run (Iddm.config DL.tech) c ~drives)
            (fun r -> r.Iddm.stats.Stats.events_processed)
            w
        in
        let _, thr_classic =
          throughput
            (fun c drives -> Classic.run (Classic.config DL.tech) c ~drives)
            (fun r -> r.Classic.stats.Stats.events_processed)
            w
        in
        (gates, ev_ddm, thr_ddm, thr_classic))
      sizes
  in
  Table.print
    (Table.make
       ~header:[ "gates"; "events (DDM)"; "DDM events/s"; "classic events/s" ]
       ~rows:
         (List.map
            (fun (g, ev, td, tc) ->
              [
                string_of_int g;
                string_of_int ev;
                Printf.sprintf "%.2fM" (td /. 1e6);
                Printf.sprintf "%.2fM" (tc /. 1e6);
              ])
            results));
  (* compare the extremes of whatever sweep ran (identical when CI
     smokes a single size) *)
  let g_small, ev_small, d_small, _ = List.hd results in
  let g_big, ev_big, d_big, c_big = List.nth results (List.length results - 1) in
  (* deterministic: the event count per gate must not blow up with
     size (the algorithmic claim behind "similar CPU time") *)
  let per_gate_small = float_of_int ev_small /. float_of_int g_small in
  let per_gate_big = float_of_int ev_big /. float_of_int g_big in
  let data =
    List.concat_map
      (fun (g, ev, td, tc) ->
        [
          (Printf.sprintf "ddm_events_per_s_%d" g, td);
          (Printf.sprintf "classic_events_per_s_%d" g, tc);
          (Printf.sprintf "ddm_events_%d" g, float_of_int ev);
        ])
      results
  in
  [
    Experiment.make ~data ~exp_id:"SCALE" ~title:"Event throughput scaling (extension)"
      [
        Experiment.observation
          ~agrees:(per_gate_big <= 2. *. per_gate_small)
          ~metric:"work scales linearly: events per gate bounded across the size sweep"
          ~paper:"CPU time very similar to other logic simulators"
          ~measured:
            (Printf.sprintf "%.1f events/gate at %d gates, %.1f at %d" per_gate_small
               g_small per_gate_big g_big)
          ();
        Experiment.observation
          ~agrees:(d_big > c_big /. 10.)
          ~metric:"IDDM within a small factor of the classical baseline (same size, \
                   back-to-back measurement)"
          ~paper:"(same claim)"
          ~measured:
            (Printf.sprintf "at %d gates: ddm %.2fM vs classic %.2fM ev/s" g_big
               (d_big /. 1e6) (c_big /. 1e6))
          ~note:
            (Printf.sprintf
               "absolute throughput varies with host load (%.2fM ev/s at %d gates this \
                run); the paired same-size comparison is the stable signal"
               (d_small /. 1e6) g_small)
          ();
      ];
  ]
