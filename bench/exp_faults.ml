(* FLT — SET fault-injection campaigns: DDM vs classic masking
   (extension).

   A single-event transient is a voltage pulse on a gate output.  The
   degradation delay model simulates the pulse as an analog ramp pair
   that degrades through the fanout cone, so narrow strikes die
   electrically where the classical inertial filter either drops them
   whole or passes them whole.  Striking the 4x4 multiplier at
   identical sites under both engines therefore yields different
   masking rates — and identical seeds must reproduce identical
   reports byte for byte. *)

open Common
module Site = Halotis_fault.Site
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report
module Hazard = Halotis_sta.Hazard

let seed = 42
let injections = 40
let ops = [ { V.op_a = 5; op_b = 11 }; { V.op_a = 10; op_b = 6 } ]

let campaign_config ~engine ~width =
  Campaign.config ~engine ~seed ~n:injections
    ~pulse:(Inject.pulse ~width ())
    ~window:(500., horizon -. 1000.)
    ~t_stop:horizon ()

let print_row label t =
  let propagated, electrical, logical = Campaign.counts t in
  Printf.printf "  %-18s %10d %10d %9d %12.2f\n" label propagated electrical logical
    (Campaign.masking_rate t)

let run () =
  section "FLT -- SET fault-injection campaigns, DDM vs classic (extension)";
  let m = Lazy.force multiplier in
  let c = m.G.mult_circuit in
  let drives = mult_drives ops in
  let width = 120. in
  Printf.printf
    "circuit %s, %d injections, seed %d, pulse %.0f ps wide, horizon %.0f ps\n\n"
    (N.name c) injections seed width horizon;
  (* One DDM campaign enumerates the strike list; the other engines
     replay the exact same strikes via [?sites]. *)
  let ddm = Campaign.run (campaign_config ~engine:Campaign.Ddm ~width) DL.tech c ~drives in
  let sites = List.map (fun (v : Campaign.verdict) -> v.Campaign.vd_site) ddm.Campaign.cam_verdicts in
  let with_sites cfg = { cfg with Campaign.sites = Some sites } in
  let cdm =
    Campaign.run
      (with_sites (campaign_config ~engine:Campaign.Cdm ~width))
      DL.tech c ~drives
  in
  let classic =
    Campaign.run
      (with_sites (campaign_config ~engine:Campaign.Classic_inertial ~width))
      DL.tech c ~drives
  in
  Printf.printf "  %-18s %10s %10s %9s %12s\n" "engine" "propagated" "electrical" "logical"
    "masking-rate";
  print_row "ddm" ddm;
  print_row "cdm" cdm;
  print_row "classic" classic;
  (* Per-site disagreement between the degradation model and the
     classical inertial abstraction. *)
  let disagreements =
    List.fold_left2
      (fun acc (a : Campaign.verdict) (b : Campaign.verdict) ->
        if a.Campaign.vd_outcome <> b.Campaign.vd_outcome then acc + 1 else acc)
      0 ddm.Campaign.cam_verdicts classic.Campaign.cam_verdicts
  in
  Printf.printf "\nDDM and classic disagree on %d of %d strikes\n" disagreements injections;
  List.iter2
    (fun (a : Campaign.verdict) (b : Campaign.verdict) ->
      if a.Campaign.vd_outcome <> b.Campaign.vd_outcome then
        Printf.printf "  %-26s ddm=%s classic=%s\n"
          (Format.asprintf "%a" (Site.pp c) a.Campaign.vd_site)
          (Campaign.outcome_to_string a.Campaign.vd_outcome)
          (Campaign.outcome_to_string b.Campaign.vd_outcome))
    ddm.Campaign.cam_verdicts classic.Campaign.cam_verdicts;
  (* Determinism: re-running the sampled campaign with the same seed
     must reproduce the serialized report exactly. *)
  let ddm2 = Campaign.run (campaign_config ~engine:Campaign.Ddm ~width) DL.tech c ~drives in
  let reproducible =
    String.equal (Fault_report.to_string ddm) (Fault_report.to_string ddm2)
    && String.equal (Fault_report.to_text ddm) (Fault_report.to_text ddm2)
  in
  Printf.printf "seed %d re-run reproduces the report byte-for-byte: %b\n" seed reproducible;
  (* Cross-validation against the static hazard analysis: how many
     propagated strikes fall inside the victim's arrival-uncertainty
     window? *)
  let h = Hazard.analyze DL.tech c in
  let cross = Campaign.hazard_crosscheck ddm h in
  let covered = List.length (List.filter snd cross) in
  Printf.printf "hazard windows cover %d of %d propagated strikes\n" covered
    (List.length cross);
  (match Campaign.vulnerability ddm with
  | [] -> ()
  | ranked ->
      print_endline "most vulnerable gates (ddm):";
      List.iteri
        (fun i (gid, hits) ->
          if i < 5 then Printf.printf "  %-16s %d propagated\n" (N.gate_name c gid) hits)
        ranked);
  let ddm_prop, _, _ = Campaign.counts ddm in
  [
    Experiment.make ~exp_id:"FLT" ~title:"SET campaigns: DDM vs classic masking (extension)"
      [
        Experiment.observation
          ~agrees:(disagreements > 0)
          ~metric:"degradation and inertial models disagree on SET propagation"
          ~paper:"(inertial filtering mispredicts pulse survival, Sec. 1)"
          ~measured:(Printf.sprintf "%d/%d strikes classified differently" disagreements injections)
          ();
        Experiment.observation ~agrees:reproducible
          ~metric:"identical seeds reproduce identical campaign reports"
          ~paper:"(determinism of the event-driven engine)"
          ~measured:(if reproducible then "byte-identical" else "MISMATCH")
          ();
        Experiment.observation
          ~agrees:(ddm_prop > 0)
          ~metric:"the workload produces observable soft errors"
          ~paper:"(sanity)"
          ~measured:(Printf.sprintf "%d of %d strikes propagated" ddm_prop injections)
          ();
      ];
  ]
