(* SERVE — persistent simulation service (extension).

   The service's pitch is amortization: load a circuit once through the
   compiled-circuit cache, then run many interactive sessions against
   it.  Two numbers capture that: the warm-over-cold load speedup (a
   cache hit skips parse + elaborate + CSR flattening + coefficient
   pricing) and the sustained request throughput of interleaved
   sessions doing set_input / advance / query rounds.  Everything runs
   in-process through Server.handle_line — the same dispatch path the
   stdio and socket transports use, minus the pipe. *)

open Common
module Json = Halotis_util.Json
module Server = Halotis_serve.Server
module Circuit_cache = Halotis_serve.Circuit_cache

let nsessions = 4
let rounds = 64
let warm_loads = 32

(* Data files resolve against the invocation cwd (repo root under
   `dune exec`) with the build tree as fallback. *)
let data f =
  let local = Filename.concat "examples" (Filename.concat "data" f) in
  if Sys.file_exists local then local
  else
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." local)

let inputs = [| "a0"; "a1"; "a2"; "a3"; "b0"; "b1"; "b2"; "b3" |]

let run () =
  section "SERVE -- persistent service: cache speedup and request throughput (extension)";
  let server = Server.create (Server.default_config ()) in
  let conn = Server.connect server in
  let id = ref 0 in
  let send fields =
    incr id;
    let line =
      Json.to_string ~indent:false
        (Json.Obj (("id", Json.Num (float_of_int !id)) :: fields))
    in
    let resp = Server.handle_line conn line in
    match Json.parse resp with
    | Ok j when Json.member "ok" j = Some (Json.Bool true) -> ()
    | _ -> failwith ("serve bench: request failed: " ^ resp)
  in
  let load () =
    send
      [
        ("op", Json.Str "load");
        ("circuit", Json.Str (data "mult4x4.hnl"));
        ("engine", Json.Str "ddm");
        ("stim", Json.Str (data "mult4x4.hsv"));
      ]
  in
  send [ ("op", Json.Str "hello"); ("version", Json.Num 1.) ];
  (* cold load: parse + flatten + price the multiplier *)
  let t0 = Unix.gettimeofday () in
  load ();
  let cold_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (* the other interactive sessions, plus a batch of warm loads for a
     stable hit-path timing (each immediately closed) *)
  for _ = 2 to nsessions do
    load ()
  done;
  let t0 = Unix.gettimeofday () in
  for k = 0 to warm_loads - 1 do
    load ();
    send [ ("op", Json.Str "close"); ("session", Json.Num (float_of_int (nsessions + 1 + k))) ]
  done;
  let warm_ms = (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int warm_loads in
  (* throughput: interleaved rounds of set_input / advance / query over
     the surviving sessions, stepping past the stimulus activity *)
  let t0 = Unix.gettimeofday () in
  let nreq = ref 0 in
  for r = 0 to rounds - 1 do
    let at = 20_000. +. (1_000. *. float_of_int r) in
    for s = 1 to nsessions do
      send
        [
          ("op", Json.Str "set_input");
          ("session", Json.Num (float_of_int s));
          ("signal", Json.Str inputs.((r + s) mod Array.length inputs));
          ("at", Json.Num at);
          ("level", Json.Bool (r mod 2 = 0));
        ];
      send
        [
          ("op", Json.Str "advance");
          ("session", Json.Num (float_of_int s));
          ("upto", Json.Num (at +. 900.));
        ];
      send
        [
          ("op", Json.Str "query");
          ("session", Json.Num (float_of_int s));
          ("what", Json.Str "stats");
        ];
      nreq := !nreq + 3
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let requests_per_s = float_of_int !nreq /. dt in
  let hits = Circuit_cache.hits (Server.cache server) in
  let speedup = cold_ms /. warm_ms in
  Printf.printf "  sessions: %d, rounds: %d (3 requests each per session)\n" nsessions rounds;
  Printf.printf "  load: cold %.3f ms, warm %.4f ms (%.0fx), cache hits %d\n" cold_ms
    warm_ms speedup hits;
  Printf.printf "  throughput: %d requests in %.3f s = %.0f requests/s\n\n" !nreq dt
    requests_per_s;
  [
    Experiment.make
      ~data:
        [
          ("serve_load_cold_ms", cold_ms);
          ("serve_load_warm_ms", warm_ms);
          ("serve_warm_speedup", speedup);
          ("serve_requests_per_s", requests_per_s);
          ("serve_cache_hits", float_of_int hits);
        ]
      ~exp_id:"SERVE" ~title:"Persistent simulation service (extension)"
      [
        Experiment.observation ~agrees:(speedup > 1.)
          ~metric:"compiled-circuit cache: warm load vs cold load"
          ~paper:"(no serving mode in the paper; amortization claim)"
          ~measured:
            (Printf.sprintf "cold %.2f ms, warm %.4f ms: %.0fx, %d hits" cold_ms warm_ms
               speedup hits)
          ();
        Experiment.observation ~agrees:(requests_per_s > 100.)
          ~metric:
            (Printf.sprintf "request throughput, %d interleaved mult4x4 sessions"
               nsessions)
          ~paper:"(interactive use: must feel instantaneous)"
          ~measured:(Printf.sprintf "%.0f requests/s" requests_per_s)
          ~note:"set_input / advance / query rounds through Server.handle_line"
          ();
      ];
  ]
