(* CONE — incremental fanout-cone re-simulation for fault campaigns
   (extension).

   `halotis faults` default-on fast path: instead of re-simulating the
   whole circuit per injection site, re-run only the victim's static
   fanout cone twice (clean and struck) and graft the difference onto
   the shared baseline.  The contract under test: reports byte-
   identical to full re-simulation (soundness — also pinned by QCheck
   in test/test_fault.ml), with sites/s improving by at least the
   circuit-to-cone size ratio allows.  Two campaigns:

   - the paper's 4x4 multiplier (dense reconvergent fanout, so cones
     are a large fraction of the circuit — the conservative case);
   - a 5000-gate random circuit (cones are a sliver of the whole, the
     regime the optimization targets; acceptance floor 2x).

   Fallback sites (replay hazards, driverless victims) are re-run in
   full inside the same campaign, so their cost — and the recorded
   fallback rate — is part of the measurement. *)

open Common
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report
module SimF = Halotis_engine.Sim

(* Site counts per campaign, smallest first.  Overridable so CI can run
   a quick smoke (e.g. [HALOTIS_CONE_SITES=40]) through the same code
   path as the full measurement. *)
let sites ~default =
  match Sys.getenv_opt "HALOTIS_CONE_SITES" with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "HALOTIS_CONE_SITES: bad count %S (want a positive int)" s))

(* A large random circuit with staggered per-input stimulus: every
   input toggles at its own jittered instants, the activity pattern a
   testbench replaying unsynchronized vectors produces. *)
let scale_workload ~gates ~seed =
  let c = G.random_combinational ~gates ~inputs:16 ~seed () in
  let rng = Halotis_util.Prng.create ~seed:(seed * 13) in
  let drives =
    List.map
      (fun s ->
        let changes =
          List.init 8 (fun k ->
              ( (2500. *. float_of_int (k + 1))
                +. Halotis_util.Prng.float rng ~bound:400.,
                Halotis_util.Prng.bool rng ))
        in
        (s, Drive.of_levels ~slope:input_slope ~initial:(Halotis_util.Prng.bool rng) changes))
      (N.primary_inputs c)
  in
  (c, drives)

let campaign ~incremental ~n ~t_stop c drives =
  (* earlier experiments leave a large major heap behind; compact so
     the measurement reflects the engine, not inherited GC debt *)
  Gc.compact ();
  let cfg = Campaign.config ~engine:Campaign.Ddm ~seed:42 ~n ~incremental ~t_stop () in
  let t0 = Unix.gettimeofday () in
  let t = Campaign.run cfg DL.tech c ~drives in
  (t, Unix.gettimeofday () -. t0)

type row = {
  label : string;
  n : int;
  on_wall : float;
  off_wall : float;
  identical : bool;
  exact : int;
  fallback : int;
  ev_site_cone : float;  (** injected-cone events per exact site *)
  ev_site_full : float;  (** baseline events ~ a full re-simulation's work *)
}

let measure ~label ~n ~t_stop c drives =
  let t_on, on_wall = campaign ~incremental:true ~n ~t_stop c drives in
  let t_off, off_wall = campaign ~incremental:false ~n ~t_stop c drives in
  let identical = Fault_report.to_string t_on = Fault_report.to_string t_off in
  let exact, fallback, cone_events =
    match t_on.Campaign.cam_cone with
    | Some tot -> (tot.SimF.Cone.ct_exact, tot.SimF.Cone.ct_fallback, tot.SimF.Cone.ct_cone_events)
    | None -> (0, n, 0)
  in
  {
    label;
    n;
    on_wall;
    off_wall;
    identical;
    exact;
    fallback;
    ev_site_cone = (if exact = 0 then Float.nan else float_of_int cone_events /. float_of_int exact);
    ev_site_full =
      float_of_int t_on.Campaign.cam_baseline_stats.Stats.events_processed;
  }

let run () =
  section "CONE -- incremental cone re-simulation for fault campaigns (extension)";
  let m = Lazy.force multiplier in
  let mult =
    measure ~label:"mult4x4"
      ~n:(sites ~default:1000)
      ~t_stop:horizon m.G.mult_circuit
      (mult_drives [ { V.op_a = 3; op_b = 5 }; { V.op_a = 12; op_b = 13 } ])
  in
  let gates = 5000 in
  let c5k, d5k = scale_workload ~gates ~seed:(gates + 1) in
  let scale =
    measure ~label:"rand5000" ~n:(sites ~default:150) ~t_stop:25_000. c5k d5k
  in
  let rows = [ mult; scale ] in
  Table.print
    (Table.make
       ~header:
         [ "circuit"; "sites"; "full (s)"; "incr (s)"; "speedup"; "exact"; "fallback" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.label;
                string_of_int r.n;
                Printf.sprintf "%.3f" r.off_wall;
                Printf.sprintf "%.3f" r.on_wall;
                Printf.sprintf "%.2fx" (r.off_wall /. r.on_wall);
                string_of_int r.exact;
                string_of_int r.fallback;
              ])
            rows));
  List.iter
    (fun r ->
      Printf.printf "  %-10s events/site: cone %.0f vs full ~%.0f; report %s\n" r.label
        r.ev_site_cone r.ev_site_full
        (if r.identical then "identical" else "MISMATCH"))
    rows;
  let speedup r = r.off_wall /. r.on_wall in
  let fallback_rate r = float_of_int r.fallback /. float_of_int r.n in
  let data =
    List.concat_map
      (fun r ->
        [
          (Printf.sprintf "cone_%s_full_wall_s" r.label, r.off_wall);
          (Printf.sprintf "cone_%s_incr_wall_s" r.label, r.on_wall);
          (Printf.sprintf "cone_%s_speedup" r.label, speedup r);
          (Printf.sprintf "cone_%s_sites_per_s" r.label, float_of_int r.n /. r.on_wall);
          (Printf.sprintf "cone_%s_fallback_rate" r.label, fallback_rate r);
          (Printf.sprintf "cone_%s_events_per_site" r.label, r.ev_site_cone);
        ])
      rows
  in
  [
    Experiment.make ~data ~exp_id:"CONE"
      ~title:"Incremental cone re-simulation for fault campaigns (extension)"
      [
        Experiment.observation
          ~agrees:(List.for_all (fun r -> r.identical) rows)
          ~metric:"campaign reports: incremental vs full re-simulation"
          ~paper:"(soundness: the graft must be exact, else fall back)"
          ~measured:
            (if List.for_all (fun r -> r.identical) rows then
               "byte-identical on both campaigns"
             else "MISMATCH")
          ();
        Experiment.observation
          ~agrees:(speedup scale >= 2.)
          ~metric:
            (Printf.sprintf "sites/s on the %d-gate campaign (acceptance floor 2x)" gates)
          ~paper:"(cone work ~ cone size, not circuit size)"
          ~measured:
            (Printf.sprintf "%.1fx (%.1f -> %.1f sites/s, %.0f%% fallback)"
               (speedup scale)
               (float_of_int scale.n /. scale.off_wall)
               (float_of_int scale.n /. scale.on_wall)
               (100. *. fallback_rate scale))
          ();
        Experiment.observation
          ~metric:"events per site, injected cone vs full re-simulation"
          ~paper:"(the saved work, independent of host load)"
          ~measured:
            (Printf.sprintf "mult4x4 %.0f vs %.0f; rand5000 %.0f vs %.0f"
               mult.ev_site_cone mult.ev_site_full scale.ev_site_cone
               scale.ev_site_full)
          ~note:
            (Printf.sprintf
               "mult4x4 speedup %.1fx: reconvergent multiplier cones span much of \
                the circuit, so the bound is modest by construction; fallback \
                rates %.1f%% / %.1f%%"
               (speedup mult)
               (100. *. fallback_rate mult)
               (100. *. fallback_rate scale))
          ();
      ];
  ]
