(* JOBS — multi-process campaign sharding (extension).

   `halotis faults --jobs N` forks N workers over disjoint site ranges
   of the same seeded enumeration and merges their verdict journals, so
   the contract under test is twofold: the merged report must be
   byte-identical to the serial run, and the wall-clock cost must scale
   with the number of usable cores (on a single-core host the honest
   expectation is parity plus a small fork/merge overhead, which this
   experiment records rather than hides).

   Unlike the in-process experiments this one must shell out: the shard
   workers re-exec the halotis binary, so the measurement is of the
   real CLI path, fork and fsync included. *)

open Common

let injections = 4000
let seed = 42
let job_counts = [ 1; 2; 4 ]

(* The bench binary is _build/.../bench/main.exe; the CLI sits in the
   sibling bin/ directory.  Data files resolve against the invocation
   cwd (repo root under `dune exec`) with the build tree as fallback. *)
let cli_exe =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "halotis_cli.exe"))

let data f =
  let local = Filename.concat "examples" (Filename.concat "data" f) in
  if Sys.file_exists local then local
  else
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." local)

let run_campaign ~jobs out =
  let cmd =
    Printf.sprintf
      "%s faults %s --stim %s -n %d --seed %d --t-stop 20000 --format json \
       --jobs %d > %s 2> /dev/null"
      (Filename.quote cli_exe)
      (Filename.quote (data "mult4x4.hnl"))
      (Filename.quote (data "mult4x4.hsv"))
      injections seed jobs (Filename.quote out)
  in
  let t0 = Unix.gettimeofday () in
  let status = Sys.command cmd in
  let dt = Unix.gettimeofday () -. t0 in
  if status <> 0 then failwith (Printf.sprintf "--jobs %d campaign exited %d" jobs status);
  (dt, Digest.file out)

let run () =
  section "JOBS -- sharded fault campaigns: identity and scaling (extension)";
  Printf.printf "circuit mult4x4, %d injections, seed %d, host cores: %s\n\n" injections
    seed
    (try String.trim (In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all)
         |> String.split_on_char '\n'
         |> List.filter (fun l -> String.length l > 9 && String.sub l 0 9 = "processor")
         |> List.length |> string_of_int
     with Sys_error _ -> "?");
  let out = Filename.temp_file "halotis_jobs" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = List.map (fun jobs -> (jobs, run_campaign ~jobs out)) job_counts in
      let _, (serial_t, serial_digest) = List.hd rows in
      Printf.printf "  %-8s %10s %10s %s\n" "jobs" "wall (s)" "speedup" "report";
      List.iter
        (fun (jobs, (dt, digest)) ->
          Printf.printf "  %-8d %10.3f %9.2fx %s\n" jobs dt (serial_t /. dt)
            (if digest = serial_digest then "identical" else "MISMATCH"))
        rows;
      let identical =
        List.for_all (fun (_, (_, digest)) -> digest = serial_digest) rows
      in
      let data =
        List.map
          (fun (jobs, (dt, _)) -> (Printf.sprintf "faults_jobs_%d_wall_s" jobs, dt))
          rows
      in
      let best_jobs, (best_t, _) =
        List.fold_left
          (fun ((_, (bt, _)) as best) ((_, (dt, _)) as row) ->
            if dt < bt then row else best)
          (List.hd rows) (List.tl rows)
      in
      [
        Experiment.make ~data ~exp_id:"JOBS"
          ~title:"Sharded fault campaigns (extension)"
          [
            Experiment.observation ~agrees:identical
              ~metric:"--jobs N report byte-identical to the serial run"
              ~paper:"(determinism of the seeded campaign enumeration)"
              ~measured:(if identical then "identical across jobs 1/2/4" else "MISMATCH")
              ();
            Experiment.observation
              ~metric:"wall-clock vs worker count"
              ~paper:"(expected to track usable cores)"
              ~measured:
                (Printf.sprintf "best %.3f s at --jobs %d vs %.3f s serial" best_t
                   best_jobs serial_t)
              ~note:
                "speedup requires multiple cores; on a 1-core host the \
                 fork/journal overhead dominates"
              ();
          ];
      ])
