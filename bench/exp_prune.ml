(* PRUNE — static survival pruning of fault campaigns (extension).

   `halotis faults --prune static` lets the abstract-interpretation
   survival analysis (lib/sta/survival.ml) decide sites whose masking
   verdict is provable from the baseline alone, skipping their
   simulations.  The contract under test: the taxonomy summary must be
   identical to the unpruned campaign's (soundness — also enforced by
   QCheck in test/test_fault.ml), and the skipped simulations should
   buy back wall-clock time proportional to the prune fraction.

   Like the jobs experiment this shells out to the real CLI, so the
   measurement includes the pruner construction cost, not just the
   saved engine runs. *)

open Common

let injections = 2000
let seed = 42
let t_stop = 20000

let cli_exe =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "halotis_cli.exe"))

let data f =
  let local = Filename.concat "examples" (Filename.concat "data" f) in
  if Sys.file_exists local then local
  else
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." local)

let run_campaign ~prune out =
  let cmd =
    Printf.sprintf
      "%s faults %s --stim %s -n %d --seed %d --t-stop %d --format json%s > %s \
       2> /dev/null"
      (Filename.quote cli_exe)
      (Filename.quote (data "mult4x4.hnl"))
      (Filename.quote (data "mult4x4.hsv"))
      injections seed t_stop
      (if prune then " --prune static" else "")
      (Filename.quote out)
  in
  let t0 = Unix.gettimeofday () in
  let status = Sys.command cmd in
  let dt = Unix.gettimeofday () -. t0 in
  if status <> 0 then
    failwith (Printf.sprintf "campaign (prune=%b) exited %d" prune status);
  let report =
    match
      Halotis_util.Json.parse (In_channel.with_open_text out In_channel.input_all)
    with
    | Ok j -> j
    | Error e -> failwith ("campaign report is not valid JSON: " ^ e)
  in
  (dt, report)

let num_member name j =
  match Halotis_util.Json.member name j with
  | Some (Halotis_util.Json.Num v) -> v
  | _ -> failwith ("report is missing " ^ name)

let run () =
  section "PRUNE -- static survival pruning of fault campaigns (extension)";
  Printf.printf "circuit mult4x4, %d injections, seed %d, horizon %d ps\n\n" injections
    seed t_stop;
  let out = Filename.temp_file "halotis_prune" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let plain_t, plain = run_campaign ~prune:false out in
      let pruned_t, pruned = run_campaign ~prune:true out in
      let identical =
        Halotis_util.Json.member "summary" plain
        = Halotis_util.Json.member "summary" pruned
      in
      let pruned_sites = num_member "sites_pruned" pruned in
      let fraction = pruned_sites /. float_of_int injections in
      let saved = plain_t -. pruned_t in
      Printf.printf "  %-16s %10s %14s\n" "mode" "wall (s)" "sites pruned";
      Printf.printf "  %-16s %10.3f %14d\n" "simulate all" plain_t 0;
      Printf.printf "  %-16s %10.3f %14.0f  (%.1f%%)\n" "--prune static" pruned_t
        pruned_sites (100. *. fraction);
      Printf.printf "\n  taxonomy summary: %s\n"
        (if identical then "identical" else "MISMATCH");
      [
        Experiment.make
          ~data:
            [
              ("faults_prune_off_wall_s", plain_t);
              ("faults_prune_on_wall_s", pruned_t);
              ("faults_prune_fraction", fraction);
              ("faults_prune_saved_s", saved);
            ]
          ~exp_id:"PRUNE" ~title:"Statically pruned fault campaigns (extension)"
          [
            Experiment.observation ~agrees:identical
              ~metric:"--prune static taxonomy summary vs unpruned run"
              ~paper:"(soundness of the survival abstract interpretation)"
              ~measured:(if identical then "identical" else "MISMATCH")
              ();
            Experiment.observation
              ~metric:"sites proven without simulation"
              ~paper:"(workload-dependent; strikes in the settled tail)"
              ~measured:
                (Printf.sprintf "%.0f of %d (%.1f%%), %.3f s saved" pruned_sites
                   injections (100. *. fraction) saved)
              ~note:
                "the quiet-tail requirement makes the fraction small on \
                 stimulus that keeps the circuit busy; campaigns on settled \
                 windows prune far more"
              ();
          ];
      ])
