(* PRUNE — static survival pruning of fault campaigns (extension).

   `halotis faults --prune static` lets the abstract-interpretation
   survival analysis (lib/sta/survival.ml) decide sites whose masking
   verdict is provable from the baseline alone, skipping their
   simulations.  The contract under test: the taxonomy summary must be
   identical to the unpruned campaign's (soundness — also enforced by
   QCheck in test/test_fault.ml), and the skipped simulations should
   buy back wall-clock time proportional to the prune fraction.

   Like the jobs experiment this shells out to the real CLI, so the
   measurement includes the pruner construction cost, not just the
   saved engine runs. *)

open Common

let injections = 2000
let seed = 42
let t_stop = 20000

let cli_exe =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "halotis_cli.exe"))

let data f =
  let local = Filename.concat "examples" (Filename.concat "data" f) in
  if Sys.file_exists local then local
  else
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." local)

(* The shipped stimulus keeps the multiplier busy (vector flip at
   4 ns of a 20 ns horizon) — almost no strike window lands in settled
   quiet, so static pruning proves little.  The settled variant moves
   the flip to 1.5 ns: the circuit quiesces early and most of the
   horizon is provably inert, the regime pruning targets. *)
let settled_stim () =
  let path = Filename.temp_file "halotis_prune_settled" ".hsv" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "# mult4x4, vectors flipped early so the run settles long before t_stop\n\
         slope 100\n\
         input a0 0 1@1500\n\
         input a1 1\n\
         input a2 0 1@1500\n\
         input a3 1\n\
         input b0 1\n\
         input b1 0 1@1500\n\
         input b2 1 0@1500\n\
         input b3 0\n");
  path

let run_campaign ?stim ~prune out =
  let stim = match stim with Some s -> s | None -> data "mult4x4.hsv" in
  let cmd =
    Printf.sprintf
      "%s faults %s --stim %s -n %d --seed %d --t-stop %d --format json%s > %s \
       2> /dev/null"
      (Filename.quote cli_exe)
      (Filename.quote (data "mult4x4.hnl"))
      (Filename.quote stim) injections seed t_stop
      (if prune then " --prune static" else "")
      (Filename.quote out)
  in
  let t0 = Unix.gettimeofday () in
  let status = Sys.command cmd in
  let dt = Unix.gettimeofday () -. t0 in
  if status <> 0 then
    failwith (Printf.sprintf "campaign (prune=%b) exited %d" prune status);
  let report =
    match
      Halotis_util.Json.parse (In_channel.with_open_text out In_channel.input_all)
    with
    | Ok j -> j
    | Error e -> failwith ("campaign report is not valid JSON: " ^ e)
  in
  (dt, report)

let num_member name j =
  match Halotis_util.Json.member name j with
  | Some (Halotis_util.Json.Num v) -> v
  | _ -> failwith ("report is missing " ^ name)

let run () =
  section "PRUNE -- static survival pruning of fault campaigns (extension)";
  Printf.printf "circuit mult4x4, %d injections, seed %d, horizon %d ps\n\n" injections
    seed t_stop;
  let out = Filename.temp_file "halotis_prune" ".json" in
  let stim = settled_stim () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ out; stim ])
    (fun () ->
      let measure ?stim label =
        let plain_t, plain = run_campaign ?stim ~prune:false out in
        let pruned_t, pruned = run_campaign ?stim ~prune:true out in
        let identical =
          Halotis_util.Json.member "summary" plain
          = Halotis_util.Json.member "summary" pruned
        in
        let pruned_sites = num_member "sites_pruned" pruned in
        (label, plain_t, pruned_t, identical, pruned_sites)
      in
      let busy = measure "busy stimulus" in
      let settled = measure ~stim "settled stimulus" in
      Printf.printf "  %-18s %-16s %10s %14s\n" "stimulus" "mode" "wall (s)"
        "sites pruned";
      List.iter
        (fun (label, plain_t, pruned_t, _, pruned_sites) ->
          Printf.printf "  %-18s %-16s %10.3f %14d\n" label "simulate all" plain_t 0;
          Printf.printf "  %-18s %-16s %10.3f %14.0f  (%.1f%%)\n" "" "--prune static"
            pruned_t pruned_sites
            (100. *. pruned_sites /. float_of_int injections))
        [ busy; settled ];
      let _, busy_plain_t, busy_pruned_t, busy_id, busy_sites = busy in
      let _, set_plain_t, set_pruned_t, set_id, set_sites = settled in
      let busy_fraction = busy_sites /. float_of_int injections in
      let set_fraction = set_sites /. float_of_int injections in
      Printf.printf "\n  taxonomy summaries: %s\n"
        (if busy_id && set_id then "identical" else "MISMATCH");
      [
        Experiment.make
          ~data:
            [
              ("faults_prune_off_wall_s", busy_plain_t);
              ("faults_prune_on_wall_s", busy_pruned_t);
              ("faults_prune_fraction", busy_fraction);
              ("faults_prune_saved_s", busy_plain_t -. busy_pruned_t);
              ("faults_prune_settled_off_wall_s", set_plain_t);
              ("faults_prune_settled_on_wall_s", set_pruned_t);
              ("faults_prune_settled_fraction", set_fraction);
              ("faults_prune_settled_saved_s", set_plain_t -. set_pruned_t);
            ]
          ~exp_id:"PRUNE" ~title:"Statically pruned fault campaigns (extension)"
          [
            Experiment.observation
              ~agrees:(busy_id && set_id)
              ~metric:"--prune static taxonomy summary vs unpruned run (both stimuli)"
              ~paper:"(soundness of the survival abstract interpretation)"
              ~measured:(if busy_id && set_id then "identical" else "MISMATCH")
              ();
            Experiment.observation
              ~agrees:(set_fraction > busy_fraction)
              ~metric:"sites proven without simulation, settled vs busy stimulus"
              ~paper:"(pruning targets strikes in the settled tail)"
              ~measured:
                (Printf.sprintf
                   "settled: %.0f of %d (%.1f%%), %.3f s saved; busy: %.0f (%.1f%%)"
                   set_sites injections (100. *. set_fraction)
                   (set_plain_t -. set_pruned_t) busy_sites (100. *. busy_fraction))
              ~note:
                "settling earlier helps, but far less than the quiet-tail \
                 phrasing once suggested: the analysis aborts to Unknown on \
                 reconvergent cones, and the multiplier is reconvergence all \
                 the way down — the binding constraint is structure, not \
                 stimulus"
              ();
          ];
      ])
