(* VARY — Monte-Carlo variation & aging campaigns (extension).

   The paper fits one set of delay/degradation coefficients per library
   cell; real silicon spreads them per device, chip and lot, and stress
   time degrades them.  This experiment re-runs the same SET strike
   list on the 4x4 multiplier across sampled parameter corners and
   measures what the workload exists for: the masking-probability
   distribution widens with the sampled spread, the zero-sigma sample
   reproduces the nominal campaign byte-for-byte, and a virtual-stress
   sweep finds the age at which a pulse the fresh circuit masked first
   becomes an observable soft error. *)

open Common
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report
module Overlay = Halotis_tech.Param_overlay
module Sampler = Halotis_vary.Sampler
module Aging = Halotis_vary.Aging
module Sweep = Halotis_vary.Sweep
module Vary_report = Halotis_vary.Vary_report

let seed = 42
let injections = 16
let width = 100.
let ops = [ { V.op_a = 5; op_b = 11 }; { V.op_a = 10; op_b = 6 } ]
let sigma_ladder = [ 0.05; 0.15; 0.3 ]

(* Corners per sigma rung.  Overridable so CI can run a quick smoke
   (e.g. [HALOTIS_VARY_SAMPLES=2]) through the same code path as the
   full measurement. *)
let samples_per_rung =
  match Sys.getenv_opt "HALOTIS_VARY_SAMPLES" with
  | None | Some "" -> 8
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "HALOTIS_VARY_SAMPLES: bad count %S (want a positive int)" s))

let campaign_config =
  Campaign.config ~engine:Campaign.Ddm ~seed ~n:injections
    ~pulse:(Inject.pulse ~width ())
    ~window:(500., horizon -. 1000.)
    ~t_stop:horizon ()

let run () =
  section "VARY -- Monte-Carlo variation & aging campaigns (extension)";
  let m = Lazy.force multiplier in
  let c = m.G.mult_circuit in
  let drives = mult_drives ops in
  Printf.printf
    "circuit %s, %d strikes, seed %d, pulse %.0f ps wide, %d corners per sigma rung\n\n"
    (N.name c) injections seed width samples_per_rung;
  (* The nominal campaign enumerates the shared strike list every
     corner replays. *)
  let nominal = Campaign.run campaign_config DL.tech c ~drives in
  let sites =
    List.map (fun (v : Campaign.verdict) -> v.Campaign.vd_site) nominal.Campaign.cam_verdicts
  in
  let run_corner overlay =
    Campaign.run
      { campaign_config with Campaign.overlay; sites = Some sites }
      DL.tech c ~drives
  in
  (* Bit-identity anchor: the zero-sigma corner is the empty overlay
     and must reproduce the nominal report byte-for-byte. *)
  let zero = run_corner (Sampler.sample Sampler.zero ~seed ~index:0 c) in
  let identical =
    String.equal (Fault_report.to_string nominal) (Fault_report.to_string zero)
    && String.equal (Fault_report.to_text nominal) (Fault_report.to_text zero)
  in
  Printf.printf "zero-sigma corner reproduces the nominal report byte-for-byte: %b\n\n"
    identical;
  (* The sigma ladder: one distribution of masking rates per rung. *)
  Printf.printf "  %-12s %10s %10s %10s %10s %8s\n" "sigma-device" "p5" "p50" "p95" "mean"
    "flips";
  let rungs =
    List.map
      (fun sigma ->
        let sg = Sampler.sigmas ~device:sigma () in
        let samples =
          List.init samples_per_rung (fun k ->
              let overlay = Sampler.sample sg ~seed ~index:k c in
              let t = run_corner overlay in
              (k, Overlay.fingerprint overlay, t.Campaign.cam_verdicts))
        in
        let report =
          Vary_report.make ~circuit:(N.name c) ~engine:"ddm" ~seed ~sigmas:sg
            ~stress_hours:0. ~nominal:nominal.Campaign.cam_verdicts ~samples ()
        in
        let p =
          match Vary_report.masking_percentiles report with
          | Some p -> p
          | None -> invalid_arg "VARY: a rung with zero samples"
        in
        Printf.printf "  %-12.2f %10.3f %10.3f %10.3f %10.3f %8d\n" sigma
          p.Vary_report.pc_p5 p.Vary_report.pc_p50 p.Vary_report.pc_p95 p.Vary_report.pc_mean
          (List.length report.Vary_report.vr_flips);
        (sigma, p, report))
      sigma_ladder
  in
  (* Spread vs sigma: the p95-p5 band of the masking rate must widen
     (weakly) as the sampled spread grows, and the top rung must move
     at least one site's verdict off its nominal outcome. *)
  let band (_, p, _) = p.Vary_report.pc_p95 -. p.Vary_report.pc_p5 in
  let widens =
    match rungs with
    | first :: (_ :: _ as rest) -> band (List.nth rest (List.length rest - 1)) >= band first
    | _ -> false
  in
  let _, _, top = List.nth rungs (List.length rungs - 1) in
  let corner_sites = List.length top.Vary_report.vr_flips in
  (* TTF sweep: age the whole circuit along the virtual-stress ladder
     until an electrically masked reference strike propagates.  Not
     every masked runt is marginal enough to unmask within the ladder,
     so the reference is chosen by probing the masked candidates once
     at the ladder's top age and sweeping the first that fails there. *)
  let max_steps = 20 in
  let h_top = 100. *. (2. ** float_of_int (max_steps - 1)) in
  let probe_site site ~stress_hours =
    let aged =
      Campaign.run
        {
          campaign_config with
          Campaign.overlay = Aging.overlay ~stress_hours ~gates:(N.gate_count c);
          sites = Some [ site ];
        }
        DL.tech c ~drives
    in
    (List.hd aged.Campaign.cam_verdicts).Campaign.vd_outcome = Campaign.Propagated
  in
  let reference =
    List.find_opt
      (fun (v : Campaign.verdict) ->
        v.Campaign.vd_outcome = Campaign.Electrically_masked
        && probe_site v.Campaign.vd_site ~stress_hours:h_top)
      nominal.Campaign.cam_verdicts
  in
  let ttf =
    match reference with
    | None ->
        print_endline
          "\nno electrically masked strike unmasks within the swept range; skipping TTF";
        None
    | Some v ->
        let t = Sweep.run ~max_steps ~probe:(probe_site v.Campaign.vd_site) () in
        (match t.Sweep.sw_ttf with
        | Some h ->
            Printf.printf
              "\nmasked reference strike first propagates at %.1f virtual stress hours \
               (%d probes)\n"
              h
              (List.length t.Sweep.sw_steps)
        | None ->
            Printf.printf "\nreference strike survives the whole swept range (%d probes)\n"
              (List.length t.Sweep.sw_steps));
        t.Sweep.sw_ttf
  in
  let data =
    List.concat_map
      (fun (sigma, p, _) ->
        let tag k = Printf.sprintf "%s_sigma_%.2f" k sigma in
        [
          (tag "masking_mean", p.Vary_report.pc_mean);
          (tag "masking_p5", p.Vary_report.pc_p5);
          (tag "masking_p95", p.Vary_report.pc_p95);
        ])
      rungs
    @ (match ttf with Some h -> [ ("ttf_hours", h) ] | None -> [])
    @ [ ("corner_sensitive_sites", float_of_int corner_sites) ]
  in
  [
    Experiment.make ~exp_id:"VARY"
      ~title:"Monte-Carlo variation & aging campaigns (extension)" ~data
      [
        Experiment.observation ~agrees:identical
          ~metric:"zero-sigma corner is bit-identical to the nominal campaign"
          ~paper:"(the overlay API's identity guarantee)"
          ~measured:(if identical then "byte-identical" else "MISMATCH")
          ();
        Experiment.observation ~agrees:widens
          ~metric:"masking-probability spread widens with parameter spread"
          ~paper:"(process variation turns masking into a distribution)"
          ~measured:
            (String.concat ", "
               (List.map
                  (fun (s, p, _) ->
                    Printf.sprintf "sigma %.2f: p95-p5 %.3f" s
                      (p.Vary_report.pc_p95 -. p.Vary_report.pc_p5))
                  rungs))
          ();
        Experiment.observation
          ~agrees:(corner_sites > 0)
          ~metric:"corner-sensitive strike sites exist"
          ~paper:"(marginal pulses die or survive depending on the corner)"
          ~measured:
            (Printf.sprintf "%d of %d sites flip at sigma %.2f" corner_sites injections
               (List.nth sigma_ladder (List.length sigma_ladder - 1)))
          ();
        Experiment.observation
          ~agrees:(ttf <> None)
          ~metric:"aging sweep converges to a time-to-failure"
          ~paper:"(degradation-window decay eventually unmasks a marginal SET)"
          ~measured:
            (match ttf with
            | Some h -> Printf.sprintf "first failure at %.1f virtual stress hours" h
            | None -> "no failure within the swept range")
          ();
      ];
  ]
