(* The HALOTIS experiment harness: regenerates every table and figure
   of the paper's evaluation, plus the extension experiments from
   DESIGN.md.

   Usage:
     dune exec bench/main.exe                     # everything
     dune exec bench/main.exe fig1 table2         # a selection
     dune exec bench/main.exe -- --list           # available experiments
     dune exec bench/main.exe -- --markdown out.md  # also write a report
     dune exec bench/main.exe -- --json out.json  # machine-readable results *)

let experiments : (string * string * (unit -> Halotis_report.Experiment.t list)) list =
  [
    ("fig1", "inertial delay wrong results (Fig. 1)", Exp_fig1.run);
    ("fig6", "multiplier waveforms, sequence A (Fig. 6)", Exp_fig6_7.run_fig6);
    ("fig7", "multiplier waveforms, sequence B (Fig. 7)", Exp_fig6_7.run_fig7);
    ("table1", "simulation statistics (Table 1)", Exp_table1.run);
    ("table2", "CPU time via Bechamel (Table 2)", Exp_table2.run);
    ("sweep", "degradation band (Section 2)", Exp_sweep.run);
    ("ablation", "cancellation rule & library sensitivity", Exp_ablation.run);
    ("calibration", "DDM parameters fitted from the analog substrate", Exp_calibration.run);
    ("latch", "glitch triggering stored state (extension)", Exp_latch.run);
    ("tree", "array vs Wallace-tree glitch activity (extension)", Exp_tree.run);
    ("collision", "input glitch collisions on a NAND2 (extension)", Exp_collision.run);
    ("scaling", "event throughput vs circuit size (extension)", Exp_scaling.run);
    ("hazard", "static hazard sites vs observed glitches (extension)", Exp_hazard.run);
    ("settle", "dynamic settle-time distribution (extension)", Exp_settle.run);
    ("setup", "flip-flop capture boundary & metastability onset (extension)", Exp_setup.run);
    ("vdd", "low-voltage operation (extension)", Exp_vdd.run);
    ("mult8", "the paper's protocol on an 8x8 multiplier (extension)", Exp_mult8.run);
    ("faults", "SET campaigns: DDM vs classic masking (extension)", Exp_faults.run);
    ("jobs", "sharded fault campaigns: identity and scaling (extension)", Exp_jobs.run);
    ("prune", "statically pruned fault campaigns (extension)", Exp_prune.run);
    ("cone", "incremental cone re-simulation for fault campaigns (extension)", Exp_cone.run);
    ("serve", "persistent service: cache speedup and request throughput (extension)", Exp_serve.run);
    ("supervise", "fault-tolerant campaign supervision: recovery overhead (extension)", Exp_supervise.run);
    ("vary", "Monte-Carlo variation & aging campaigns (extension)", Exp_vary.run);
  ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-12s %s\n" name descr) experiments

(* Machine-readable results: one record per experiment with its
   agreement verdicts and the named numeric metrics it exported
   (throughputs etc.) — the input to perf regression tracking. *)
let json_of_records records =
  let module J = Halotis_util.Json in
  let module E = Halotis_report.Experiment in
  let obs (o : E.observation) =
    J.Obj
      [
        ("metric", J.Str o.E.metric);
        ("paper", J.Str o.E.paper);
        ("measured", J.Str o.E.measured);
        ( "agrees",
          match o.E.agrees with Some b -> J.Bool b | None -> J.Null );
        ("note", J.Str o.E.note);
      ]
  in
  let record (r : E.t) =
    J.Obj
      [
        ("exp_id", J.Str r.E.exp_id);
        ("title", J.Str r.E.title);
        ("observations", J.Arr (List.map obs r.E.observations));
        ("data", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) r.E.data));
      ]
  in
  J.Obj
    [
      ("report", J.Str "halotis-bench");
      ("version", J.Num 1.);
      ("experiments", J.Arr (List.map record records));
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let extract_opt flag args =
    let rec extract acc = function
      | f :: path :: rest when f = flag -> (Some path, List.rev_append acc rest)
      | x :: rest -> extract (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    extract [] args
  in
  let markdown, args = extract_opt "--markdown" args in
  let json, args = extract_opt "--json" args in
  if List.mem "--list" args then list_experiments ()
  else begin
    let selected =
      match args with
      | [] -> experiments
      | names ->
          List.map
            (fun name ->
              match List.find_opt (fun (n, _, _) -> n = name) experiments with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment %S\n" name;
                  list_experiments ();
                  exit 2)
            names
    in
    let records = List.concat_map (fun (_, _, run) -> run ()) selected in
    Common.section "paper vs measured";
    List.iter (fun r -> print_string (Halotis_report.Experiment.render r)) records;
    (match markdown with
    | Some path ->
        let oc = open_out path in
        output_string oc "# HALOTIS benchmark report\n\n";
        output_string oc (Halotis_report.Experiment.render_markdown records);
        close_out oc;
        Printf.printf "\nmarkdown report written to %s\n" path
    | None -> ());
    (match json with
    | Some path ->
        let oc = open_out path in
        output_string oc (Halotis_util.Json.to_string (json_of_records records));
        output_char oc '\n';
        close_out oc;
        Printf.printf "\njson results written to %s\n" path
    | None -> ());
    let divergent =
      List.exists
        (fun (r : Halotis_report.Experiment.t) ->
          List.exists
            (fun (o : Halotis_report.Experiment.observation) ->
              o.Halotis_report.Experiment.agrees = Some false)
            r.Halotis_report.Experiment.observations)
        records
    in
    if divergent then begin
      print_endline "\nWARNING: at least one observation diverges from the paper.";
      exit 1
    end
    else print_endline "\nAll observations consistent with the paper's claims."
  end
