(* Fault-tolerant campaign supervision.

   Three layers:
   - unit tests of the core-count fallback chain (stubbed readers) and
     the chunk planner;
   - end-to-end CLI tests of recovery: a worker SIGKILLed mid-journal
     (torn tail), a hung worker (heartbeat stall), and a deterministic
     poison site that must be quarantined with the degraded exit code;
   - a QCheck property: over random circuits, seeds, chunk sizes and
     injected kills/hangs, the supervised report AND merged journal are
     byte-identical to --jobs 1, with nothing quarantined when no
     poison is injected. *)

module Json = Halotis_util.Json
module Prng = Halotis_util.Prng
module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Hnl = Halotis_netlist.Hnl
module Shard = Halotis_fault.Shard
module Supervisor = Halotis_fault.Supervisor

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- satellite: core-count detection with stubbed readers --- *)

let test_parse_core_count () =
  let cases =
    [ ("8", Some 8); (" 12 \n", Some 12); ("1", Some 1); ("0", None);
      ("-3", None); ("eight", None); ("", None) ]
  in
  List.iter
    (fun (s, want) ->
      checkb (Printf.sprintf "parse %S" s) true (Shard.parse_core_count s = want))
    cases

let cpuinfo_sample n =
  String.concat "\n"
    (List.concat_map
       (fun i ->
         [
           Printf.sprintf "processor\t: %d" i; "vendor_id\t: GenuineTest";
           "model name\t: Test CPU"; "";
         ])
       (List.init n Fun.id))

let test_count_cpuinfo () =
  checkb "three processors" true
    (Shard.count_cpuinfo_processors (cpuinfo_sample 3) = Some 3);
  checkb "one processor" true
    (Shard.count_cpuinfo_processors (cpuinfo_sample 1) = Some 1);
  checkb "no processor lines" true
    (Shard.count_cpuinfo_processors "vendor_id: x\nmodel: y\n" = None);
  checkb "empty contents" true (Shard.count_cpuinfo_processors "" = None)

let test_detect_cores_fallback_chain () =
  let const v () = v in
  let n =
    Shard.detect_cores ~getconf:(const (Some "16")) ~sysctl:(const (Some "4"))
      ~cpuinfo:(const (Some (cpuinfo_sample 2))) ()
  in
  checki "getconf wins when it answers" 16 n;
  let n =
    Shard.detect_cores ~getconf:(const None) ~sysctl:(const (Some "4"))
      ~cpuinfo:(const (Some (cpuinfo_sample 2))) ()
  in
  checki "sysctl is the second source" 4 n;
  let n =
    Shard.detect_cores
      ~getconf:(const (Some "garbage"))
      ~sysctl:(const (Some "0"))
      ~cpuinfo:(const (Some (cpuinfo_sample 2)))
      ()
  in
  checki "unparseable outputs fall through to /proc/cpuinfo" 2 n;
  let n =
    Shard.detect_cores ~getconf:(const None) ~sysctl:(const None)
      ~cpuinfo:(const None) ()
  in
  checki "no source at all degrades to 1" 1 n;
  checkb "real detection answers >= 1" true (Shard.available_cores () >= 1)

(* --- chunk planning --- *)

let test_plan_chunks () =
  checkb "even split" true
    (Supervisor.plan_chunks ~total:10 ~chunk_sites:4 = [ (0, 4); (4, 8); (8, 10) ]);
  checkb "one big chunk" true
    (Supervisor.plan_chunks ~total:5 ~chunk_sites:100 = [ (0, 5) ]);
  checkb "empty campaign" true (Supervisor.plan_chunks ~total:0 ~chunk_sites:3 = []);
  let chunks = Supervisor.plan_chunks ~total:97 ~chunk_sites:7 in
  checkb "chunks cover the range exactly" true
    (List.fold_left
       (fun next (lo, hi) ->
         match next with
         | Some n when n = lo && lo < hi -> Some hi
         | _ -> None)
       (Some 0) chunks
    = Some 97);
  checkb "auto size is about four chunks per worker" true
    (Supervisor.auto_chunk_sites ~total:100 ~jobs:5 = 5);
  checkb "auto size is at least one" true
    (Supervisor.auto_chunk_sites ~total:2 ~jobs:8 = 1)

(* --- CLI harness (with environment control for chaos injection) --- *)

let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".."
let exe = Filename.concat build_root (Filename.concat "bin" "halotis_cli.exe")

let data f =
  Filename.concat build_root
    (Filename.concat "examples" (Filename.concat "data" f))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_env env args =
  let out = Filename.temp_file "halotis_sv" ".out" in
  let err = Filename.temp_file "halotis_sv" ".err" in
  let cmd =
    Printf.sprintf "%s%s %s > %s 2> %s"
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s " k (Filename.quote v)) env))
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let status = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (status, stdout, stderr)

let mult_args =
  [
    "faults"; data "mult4x4.hnl"; "--stim"; data "mult4x4.hsv"; "-n"; "9";
    "--seed"; "7"; "--t-stop"; "20000"; "--format"; "json";
  ]

(* --- satellite: SIGKILL mid-journal (torn tail), recovery identical --- *)

let test_chaos_kill_recovers_byte_identical () =
  (* HALOTIS_CHAOS_KILL appends a torn half-record to the chunk journal
     and SIGKILLs the worker after its first fresh verdict: every chunk
     dies once mid-journal, and the supervised retry must recover a
     report byte-identical to the serial run. *)
  let s0, serial, _ = run_env [] mult_args in
  checki "serial exits 0" 0 s0;
  let s1, recovered, stderr =
    run_env
      [ ("HALOTIS_CHAOS_KILL", "1") ]
      (mult_args @ [ "--jobs"; "2"; "--chunk-sites"; "3" ])
  in
  checki "supervised run recovers to exit 0" 0 s1;
  checks "recovered report byte-identical to serial" serial recovered;
  checkb "stall warnings were emitted" true
    (let rec count i acc =
       match String.index_from_opt stderr i 'w' with
       | Some j when j + 12 <= String.length stderr ->
           if String.sub stderr j 12 = "worker-stall" then count (j + 1) (acc + 1)
           else count (j + 1) acc
       | _ -> acc
     in
     count 0 0 >= 1)

let test_chaos_hang_recovers_byte_identical () =
  let s0, serial, _ = run_env [] mult_args in
  checki "serial exits 0" 0 s0;
  let s1, recovered, stderr =
    run_env
      [ ("HALOTIS_CHAOS_HANG", "1") ]
      (mult_args @ [ "--jobs"; "2"; "--chunk-sites"; "5"; "--worker-timeout"; "2" ])
  in
  checki "hung workers are killed and the run recovers" 0 s1;
  checks "recovered report byte-identical to serial" serial recovered;
  checkb "the stall kill is reported" true
    (let needle = "no journal progress" in
     let n = String.length needle and m = String.length stderr in
     let rec find i =
       if i + n > m then false
       else String.sub stderr i n = needle || find (i + 1)
     in
     find 0)

(* --- deterministic poison site: quarantine + degraded exit code --- *)

let test_poison_quarantine_degraded () =
  let s, report, stderr =
    run_env
      [ ("HALOTIS_CHAOS_POISON", "4") ]
      (mult_args @ [ "--jobs"; "2"; "--chunk-sites"; "3" ])
  in
  checki "degraded campaign exits 5" 5 s;
  (match Json.parse report with
  | Error e -> Alcotest.failf "degraded report is not valid JSON: %s" e
  | Ok j -> (
      checkb "degraded flag set" true (Json.member "degraded" j = Some (Json.Bool true));
      checkb "quarantine count" true
        (Json.member "sites_quarantined" j = Some (Json.Num 1.));
      checkb "partial is about limits, not quarantine" true
        (Json.member "partial" j = Some (Json.Bool false));
      (match Json.member "verdicts" j with
      | Some (Json.Arr vs) -> checki "the other eight sites have verdicts" 8 (List.length vs)
      | _ -> Alcotest.fail "verdicts array missing");
      match Json.member "quarantined_sites" j with
      | Some (Json.Arr [ site ]) ->
          checkb "quarantined site index" true
            (Json.member "index" site = Some (Json.Num 4.));
          checkb "quarantined site is named" true
            (match (Json.member "gate" site, Json.member "signal" site) with
            | Some (Json.Str g), Some (Json.Str s) -> g <> "" && s <> ""
            | _ -> false)
      | _ -> Alcotest.fail "quarantined_sites must list exactly site 4"));
  checkb "stderr carries the site-quarantined warning" true
    (let needle = "site-quarantined" in
     let n = String.length needle and m = String.length stderr in
     let rec find i =
       if i + n > m then false
       else String.sub stderr i n = needle || find (i + 1)
     in
     find 0)

(* --- property: supervised == serial over random campaigns --- *)

(* A random combinational circuit and a matching stimulus file, written
   to disk for the CLI. *)
let write_fixture ~gates ~seed =
  let c = G.random_combinational ~name:"randsv" ~gates ~inputs:5 ~seed () in
  let hnl = Filename.temp_file "halotis_sv" ".hnl" in
  let oc = open_out hnl in
  output_string oc (Hnl.to_string c);
  close_out oc;
  let rng = Prng.create ~seed:(seed * 13 + 5) in
  let hsv = Filename.temp_file "halotis_sv" ".hsv" in
  let oc = open_out hsv in
  output_string oc "slope 80\n";
  List.iter
    (fun sid ->
      let name = N.signal_name c sid in
      let init = if Prng.bool rng then 1 else 0 in
      let changes =
        List.init 3 (fun k ->
            Printf.sprintf "%d@%d"
              (if Prng.bool rng then 1 else 0)
              ((k + 1) * 700) )
      in
      output_string oc
        (Printf.sprintf "input %s %d %s\n" name init (String.concat " " changes)))
    (N.primary_inputs c);
  close_out oc;
  (hnl, hsv)

let prop_supervised_equals_serial =
  let gen =
    QCheck.Gen.(
      int_range 1 1000 >>= fun seed ->
      int_range 8 18 >>= fun gates ->
      int_range 4 9 >>= fun nsites ->
      int_range 1 4 >>= fun chunk ->
      oneofl [ `None; `Kill 1; `Kill 2; `Hang 1 ] >>= fun chaos ->
      return (seed, gates, nsites, chunk, chaos))
  in
  let print (seed, gates, nsites, chunk, chaos) =
    Printf.sprintf "seed=%d gates=%d n=%d chunk=%d chaos=%s" seed gates nsites chunk
      (match chaos with
      | `None -> "none"
      | `Kill n -> Printf.sprintf "kill:%d" n
      | `Hang n -> Printf.sprintf "hang:%d" n)
  in
  QCheck.Test.make ~count:6
    ~name:"supervised report and journal byte-identical to --jobs 1"
    (QCheck.make ~print gen)
    (fun (seed, gates, nsites, chunk, chaos) ->
      let hnl, hsv = write_fixture ~gates ~seed in
      let sj = Filename.temp_file "halotis_sv" ".sjournal" in
      let pj = Filename.temp_file "halotis_sv" ".pjournal" in
      Sys.remove sj;
      Sys.remove pj;
      let args journal =
        [
          "faults"; hnl; "--stim"; hsv; "-n"; string_of_int nsites; "--seed";
          string_of_int seed; "--t-stop"; "6000"; "--format"; "json"; "--journal";
          journal;
        ]
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ hnl; hsv; sj; pj ])
        (fun () ->
          let s0, serial, _ = run_env [] (args sj) in
          let env, extra =
            match chaos with
            | `None -> ([], [])
            | `Kill n -> ([ ("HALOTIS_CHAOS_KILL", string_of_int n) ], [])
            | `Hang n ->
                ( [ ("HALOTIS_CHAOS_HANG", string_of_int n) ],
                  [ "--worker-timeout"; "2" ] )
          in
          let s1, supervised, _ =
            run_env env
              (args pj
              @ [ "--jobs"; "2"; "--chunk-sites"; string_of_int chunk ]
              @ extra)
          in
          s0 = 0 && s1 = 0 && serial = supervised
          && read_file sj = read_file pj
          &&
          (* no poison injected: nothing may be quarantined *)
          match Json.parse supervised with
          | Ok j ->
              Json.member "degraded" j = Some (Json.Bool false)
              && Json.member "quarantined_sites" j = Some (Json.Arr [])
          | Error _ -> false))

let tests =
  [
    ( "supervisor.cores",
      [
        Alcotest.test_case "parse_core_count" `Quick test_parse_core_count;
        Alcotest.test_case "count_cpuinfo_processors" `Quick test_count_cpuinfo;
        Alcotest.test_case "fallback chain with stubbed readers" `Quick
          test_detect_cores_fallback_chain;
      ] );
    ( "supervisor.plan",
      [ Alcotest.test_case "chunk planning" `Quick test_plan_chunks ] );
    ( "supervisor.recovery",
      [
        Alcotest.test_case "SIGKILL mid-journal recovers byte-identical" `Quick
          test_chaos_kill_recovers_byte_identical;
        Alcotest.test_case "hung worker recovers byte-identical" `Quick
          test_chaos_hang_recovers_byte_identical;
        Alcotest.test_case "poison site quarantined, exit 5" `Quick
          test_poison_quarantine_degraded;
        QCheck_alcotest.to_alcotest prop_supervised_equals_serial;
      ] );
  ]
