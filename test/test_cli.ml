(* End-to-end tests of the `halotis lint` command: exit codes 0/1/2 and
   machine-parseable JSON on stdout.  The executable and the example
   data are declared as dune deps, so paths are relative to the test's
   build directory. *)

module Json = Halotis_util.Json
module Lint = Halotis_lint.Lint

(* Anchor on the test binary so the paths resolve both under `dune
   runtest` (cwd = build dir) and `dune exec` (cwd = invocation dir). *)
let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".."
let exe = Filename.concat build_root (Filename.concat "bin" "halotis_cli.exe")

let data f =
  Filename.concat build_root
    (Filename.concat "examples" (Filename.concat "data" f))

let run_capture args =
  let out = Filename.temp_file "halotis_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let status = Sys.command cmd in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let stdout = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (status, stdout)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_exit_clean () =
  let status, _ = run_capture [ "lint"; data "c17.hnl" ] in
  checki "clean circuit exits 0" 0 status;
  let status, _ = run_capture [ "lint"; data "c17.hnl"; "--strict" ] in
  checki "clean circuit exits 0 under --strict" 0 status

let test_exit_warnings_strict () =
  (* Disabling ST001 leaves only warnings (non-monotone + runt pulse). *)
  let args =
    [ "lint"; data "c17.hnl"; "--stim"; data "c17_flawed.hsv"; "--disable"; "ST001" ]
  in
  let status, _ = run_capture args in
  checki "warnings exit 0 without --strict" 0 status;
  let status, _ = run_capture (args @ [ "--strict" ]) in
  checki "warnings exit 1 with --strict" 1 status

let test_exit_errors () =
  let status, _ = run_capture [ "lint"; data "flawed.hnl" ] in
  checki "errors exit 2" 2 status

let test_severity_promotion () =
  (* Promoting a warning rule to error flips the exit code to 2. *)
  let status, _ =
    run_capture
      [
        "lint"; data "c17.hnl"; "--stim"; data "c17_flawed.hsv";
        "--disable"; "ST001"; "--severity"; "ST003=error";
      ]
  in
  checki "promoted warning exits 2" 2 status

let test_json_stdout_parses () =
  let status, stdout =
    run_capture
      [
        "lint"; data "flawed.hnl"; "--stim"; data "c17_flawed.hsv";
        "--liberty"; data "flawed.lib"; "--format"; "json";
      ]
  in
  checki "flawed inputs exit 2" 2 status;
  match Json.parse stdout with
  | Error e -> Alcotest.failf "stdout is not valid JSON: %s" e
  | Ok j -> (
      checkb "tool tag" true (Json.member "tool" j = Some (Json.Str "halotis-lint"));
      match Lint.findings_of_json j with
      | Error e -> Alcotest.fail e
      | Ok findings ->
          checkb "has errors" true (Lint.errors findings > 0);
          (* one finding from every domain: the acceptance criterion *)
          List.iter
            (fun domain ->
              checkb
                (Halotis_lint.Finding.domain_to_string domain ^ " domain present")
                true
                (List.exists
                   (fun (f : Halotis_lint.Finding.t) -> f.Halotis_lint.Finding.domain = domain)
                   findings))
            [
              Halotis_lint.Finding.Netlist; Halotis_lint.Finding.Tech;
              Halotis_lint.Finding.Liberty; Halotis_lint.Finding.Stim;
            ])

let test_list_rules_json () =
  let status, stdout = run_capture [ "lint"; "--list-rules"; "--format"; "json" ] in
  checki "list-rules exits 0" 0 status;
  match Json.parse stdout with
  | Error e -> Alcotest.failf "rule list is not valid JSON: %s" e
  | Ok j ->
      checki "all rules listed" (List.length Halotis_lint.Rule.all)
        (List.length (Json.to_list j))

let test_check_alias () =
  let status, _ = run_capture [ "check"; data "c17.hnl" ] in
  checki "check alias clean" 0 status;
  let status, _ = run_capture [ "check"; data "flawed.hnl" ] in
  checki "check alias flawed" 2 status

let faults_args =
  [
    "faults"; data "c17.hnl"; "--stim"; data "c17_walk.hsv"; "-n"; "10"; "--seed"; "3";
    "--format"; "json";
  ]

let test_faults_json () =
  let status, stdout = run_capture faults_args in
  checki "faults campaign exits 0" 0 status;
  match Json.parse stdout with
  | Error e -> Alcotest.failf "faults report is not valid JSON: %s" e
  | Ok j ->
      checkb "tool key" true (Json.member "tool" j = Some (Json.Str "halotis-faults"));
      checkb "seed echoed" true (Json.member "seed" j = Some (Json.Num 3.));
      (match Json.member "verdicts" j with
      | Some (Json.Arr vs) -> checki "one verdict per injection" 10 (List.length vs)
      | _ -> Alcotest.fail "verdicts array missing");
      (match Json.member "summary" j with
      | Some summary ->
          checkb "summary counts present" true
            (Json.member "propagated" summary <> None
            && Json.member "masking_rate" summary <> None)
      | None -> Alcotest.fail "summary missing")

let test_faults_deterministic () =
  let _, first = run_capture faults_args in
  let _, second = run_capture faults_args in
  Alcotest.(check string) "same seed, byte-identical report" first second

let test_faults_bad_engine () =
  let status, _ =
    run_capture [ "faults"; data "c17.hnl"; "--engine"; "spice" ]
  in
  checkb "unknown engine rejected" true (status <> 0)

(* --- Sharded campaigns: the --jobs N report must be the --jobs 1
   report, byte for byte, on the 4x4 multiplier fixture --- *)

let mult_faults_args =
  [
    "faults"; data "mult4x4.hnl"; "--stim"; data "mult4x4.hsv"; "-n"; "9";
    "--seed"; "7"; "--t-stop"; "20000"; "--format"; "json";
  ]

let test_faults_jobs_byte_identical () =
  let status_s, serial = run_capture mult_faults_args in
  checki "serial campaign exits 0" 0 status_s;
  let status_j, sharded = run_capture (mult_faults_args @ [ "--jobs"; "3" ]) in
  checki "sharded campaign exits 0" 0 status_j;
  Alcotest.(check string) "--jobs 3 report byte-identical to serial" serial sharded

let test_faults_jobs_crash_resume () =
  (* A worker "crash" is a shard journal with a torn tail: run one shard
     to completion, tear its last record in half, then let the parent
     resume all three shards.  The other two shards start from nothing
     (their journals never existed), the torn one re-simulates only its
     lost suffix, and the merged report must still match serial. *)
  let _, serial = run_capture mult_faults_args in
  let base = Filename.temp_file "halotis_cli_shard" ".journal" in
  Sys.remove base;
  let shard1 = base ^ ".1" in
  let status_w, _ =
    run_capture (mult_faults_args @ [ "--shard"; "1/3"; "--journal"; shard1 ])
  in
  checki "shard worker exits 0" 0 status_w;
  (* tear: drop the trailing newline and half the final record *)
  let ic = open_in_bin shard1 in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let torn =
    let upto = String.rindex_from contents (String.length contents - 2) '\n' in
    String.sub contents 0 (upto + 1 + ((String.length contents - upto) / 2))
  in
  checkb "fixture journal holds several verdicts" true
    (String.length torn < String.length contents);
  let oc = open_out_bin shard1 in
  output_string oc torn;
  close_out oc;
  let status_r, resumed =
    run_capture (mult_faults_args @ [ "--jobs"; "3"; "--resume"; base ])
  in
  checki "resumed sharded campaign exits 0" 0 status_r;
  Alcotest.(check string) "post-crash resume report byte-identical to serial" serial
    resumed;
  (* the parent leaves one merged serial journal at the base path and
     removes the per-shard files *)
  checkb "merged journal written" true (Sys.file_exists base);
  checkb "shard journals cleaned up" false (Sys.file_exists shard1);
  Sys.remove base

(* --- survival subcommand + static pruning --- *)

let test_survival_text () =
  let status, stdout = run_capture [ "survival"; data "c17.hnl" ] in
  checki "survival exits 0" 0 status;
  checkb "renders the map header" true
    (String.length stdout > 0
    && String.sub stdout 0 (min 12 (String.length stdout)) = "survival map")

let test_survival_json () =
  let status, stdout =
    run_capture [ "survival"; data "mult4x4.hnl"; "--format"; "json" ]
  in
  checki "survival --format json exits 0" 0 status;
  match Json.parse stdout with
  | Error e -> Alcotest.failf "survival map is not valid JSON: %s" e
  | Ok j ->
      checkb "tool key" true
        (Json.member "tool" j = Some (Json.Str "halotis-survival"));
      checkb "not degenerate" true
        (Json.member "degenerate" j = Some (Json.Bool false));
      (match Json.member "sites" j with
      | Some (Json.Arr sites) -> checkb "many sites" true (List.length sites > 50)
      | _ -> Alcotest.fail "sites array missing")

(* --prune static must leave the taxonomy untouched: same summary and
   per-site outcomes, only the pruned/simulated split moves. *)
let test_faults_prune_taxonomy_identical () =
  let args =
    [
      "faults"; data "mult4x4.hnl"; "--stim"; data "mult4x4.hsv"; "-n"; "12";
      "--seed"; "7"; "--t-stop"; "20000"; "--format"; "json";
    ]
  in
  let s0, plain = run_capture args in
  let s1, pruned = run_capture (args @ [ "--prune"; "static" ]) in
  checki "plain exits 0" 0 s0;
  checki "pruned exits 0" 0 s1;
  match (Json.parse plain, Json.parse pruned) with
  | Ok jp, Ok js ->
      checkb "summary identical" true (Json.member "summary" jp = Json.member "summary" js);
      let outcomes j =
        match Json.member "verdicts" j with
        | Some (Json.Arr vs) -> List.map (fun v -> Json.member "outcome" v) vs
        | _ -> []
      in
      checkb "per-site outcomes identical" true (outcomes jp = outcomes js);
      checkb "plain report never prunes" true
        (Json.member "sites_pruned" jp = Some (Json.Num 0.))
  | Error e, _ | _, Error e -> Alcotest.failf "report is not valid JSON: %s" e

let tests =
  [
    ( "cli.survival",
      [
        Alcotest.test_case "text map" `Quick test_survival_text;
        Alcotest.test_case "json map" `Quick test_survival_json;
        Alcotest.test_case "--prune static taxonomy identical" `Quick
          test_faults_prune_taxonomy_identical;
      ] );
    ( "cli.faults",
      [
        Alcotest.test_case "json report" `Quick test_faults_json;
        Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
        Alcotest.test_case "bad engine rejected" `Quick test_faults_bad_engine;
        Alcotest.test_case "--jobs 3 byte-identical" `Quick
          test_faults_jobs_byte_identical;
        Alcotest.test_case "crash-resume byte-identical" `Quick
          test_faults_jobs_crash_resume;
      ] );
    ( "cli.lint",
      [
        Alcotest.test_case "exit 0 on clean" `Quick test_exit_clean;
        Alcotest.test_case "exit 1 on strict warnings" `Quick test_exit_warnings_strict;
        Alcotest.test_case "exit 2 on errors" `Quick test_exit_errors;
        Alcotest.test_case "severity promotion" `Quick test_severity_promotion;
        Alcotest.test_case "json stdout parses" `Quick test_json_stdout_parses;
        Alcotest.test_case "list-rules json" `Quick test_list_rules_json;
        Alcotest.test_case "check alias" `Quick test_check_alias;
      ] );
  ]
