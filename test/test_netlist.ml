(* Tests for Halotis_netlist: builder, checks, HNL, generators. *)

module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module Check = Halotis_netlist.Check
module Hnl = Halotis_netlist.Hnl
module G = Halotis_netlist.Generators
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let simple_inverter () =
  let b = Builder.create "inv1" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g" ~inputs:[ a ] ~output:y in
  Builder.mark_output b y;
  Builder.finalize b

let test_builder_basic () =
  let c = simple_inverter () in
  checki "signals" 2 (N.signal_count c);
  checki "gates" 1 (N.gate_count c);
  checkb "pi" true (List.length (N.primary_inputs c) = 1);
  checkb "po" true (List.length (N.primary_outputs c) = 1);
  let g = N.gate c 0 in
  Alcotest.(check string) "gate name" "g" g.N.gate_name;
  checkb "driver" true ((N.signal c g.N.output).N.driver = Some 0)

let test_builder_find () =
  let c = simple_inverter () in
  checkb "find a" true (N.find_signal c "a" <> None);
  checkb "find y" true (N.find_signal c "y" <> None);
  checkb "find missing" true (N.find_signal c "zz" = None);
  checkb "find gate" true (N.find_gate c "g" <> None)

let test_builder_double_drive () =
  let b = Builder.create "bad" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~inputs:[ a ] ~output:y in
  checkb "raises" true
    (try
       ignore (Builder.add_gate b Gate_kind.Buf ~inputs:[ a ] ~output:y);
       false
     with Invalid_argument _ -> true)

let test_builder_drive_input () =
  let b = Builder.create "bad" in
  let a = Builder.input b "a" in
  let a2 = Builder.input b "a2" in
  checkb "raises" true
    (try
       ignore (Builder.add_gate b Gate_kind.Inv ~inputs:[ a ] ~output:a2);
       false
     with Invalid_argument _ -> true)

let test_builder_arity_mismatch () =
  let b = Builder.create "bad" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  checkb "raises" true
    (try
       ignore (Builder.add_gate b (Gate_kind.And 2) ~inputs:[ a ] ~output:y);
       false
     with Invalid_argument _ -> true)

let test_builder_duplicate_names () =
  let b = Builder.create "bad" in
  let _ = Builder.input b "a" in
  checkb "dup signal" true
    (try
       ignore (Builder.input b "a");
       false
     with Invalid_argument _ -> true)

let test_builder_const_shared () =
  let b = Builder.create "c" in
  let z1 = Builder.const b Value.L0 in
  let z2 = Builder.const b Value.L0 in
  let o1 = Builder.const b Value.L1 in
  checki "same zero" z1 z2;
  checkb "distinct" true (z1 <> o1)

let test_builder_fresh_names_unique () =
  let b = Builder.create "c" in
  let s1 = Builder.fresh_signal b in
  let s2 = Builder.fresh_signal b in
  checkb "distinct ids" true (s1 <> s2)

let test_fanout () =
  let b = Builder.create "fan" in
  let a = Builder.input b "a" in
  let y1 = Builder.signal b "y1" in
  let y2 = Builder.signal b "y2" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g1" ~inputs:[ a ] ~output:y1 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ a ] ~output:y2 in
  let c = Builder.finalize b in
  checki "fanout" 2 (List.length (N.fanout_gates c a));
  checki "loads" 2 (Array.length (N.signal c a).N.loads)

(* --- Check --- *)

let test_topo_order () =
  let c = G.inverter_chain ~n:5 () in
  match Check.topological_gates c with
  | None -> Alcotest.fail "chain is acyclic"
  | Some order ->
      checki "all gates" 5 (List.length order);
      (* every gate's fanin driver appears before it *)
      let position = Hashtbl.create 8 in
      List.iteri (fun i gid -> Hashtbl.replace position gid i) order;
      List.iter
        (fun gid ->
          let g = N.gate c gid in
          Array.iter
            (fun sid ->
              match (N.signal c sid).N.driver with
              | Some d ->
                  checkb "fanin first" true
                    (Hashtbl.find position d < Hashtbl.find position gid)
              | None -> ())
            g.N.fanin)
        order

let cyclic_circuit () =
  let b = Builder.create "cyc" in
  let a = Builder.input b "a" in
  let x = Builder.signal b "x" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g1" ~inputs:[ a; y ] ~output:x in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ x ] ~output:y in
  Builder.mark_output b x;
  Builder.finalize b

let test_cycle_detection () =
  let c = cyclic_circuit () in
  checkb "no topo order" true (Check.topological_gates c = None);
  checkb "cycle reported" true
    (List.exists
       (function Check.Combinational_cycle _ -> true | _ -> false)
       (Check.structural_issues c));
  checkb "no levelize" true (Check.levelize c = None)

let test_issues_clean_circuit () =
  let c = G.inverter_chain ~n:3 () in
  checki "no issues" 0 (List.length (Check.structural_issues c))

let test_undriven_dangling () =
  let b = Builder.create "loose" in
  let a = Builder.input b "a" in
  let floating = Builder.signal b "floating" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g" ~inputs:[ a; floating ] ~output:y in
  (* y is not marked output: dangling *)
  let c = Builder.finalize b in
  let issues = Check.structural_issues c in
  checkb "undriven" true
    (List.exists (function Check.Undriven_signal _ -> true | _ -> false) issues);
  checkb "dangling" true
    (List.exists (function Check.Dangling_signal _ -> true | _ -> false) issues)

let test_levelize_depth () =
  let c = G.inverter_chain ~n:4 () in
  (match Check.levelize c with
  | Some levels -> checki "max level" 4 (Array.fold_left max 0 levels)
  | None -> Alcotest.fail "acyclic");
  checkb "depth" true (Check.depth c = Some 4)

let test_max_fanout () =
  let f = G.fig1_circuit () in
  checki "out0 drives two" 2 (Check.max_fanout f.G.circuit)

let test_transitive_fanin () =
  let c = G.inverter_chain ~n:3 () in
  let out = match N.find_signal c "out" with Some s -> s | None -> assert false in
  checki "cone size" 4 (List.length (Check.transitive_fanin_signals c out))

(* --- Static evaluation helper (used for generator correctness) --- *)

let static_eval c ~input_levels =
  let levels = Array.make (N.signal_count c) false in
  Array.iter
    (fun (s : N.signal) ->
      match s.N.constant with
      | Some Value.L1 -> levels.(s.N.signal_id) <- true
      | Some (Value.L0 | Value.X | Value.Z) | None -> ())
    (N.signals c);
  List.iter2 (fun sid v -> levels.(sid) <- v) (N.primary_inputs c) input_levels;
  (match Check.topological_gates c with
  | Some order ->
      List.iter
        (fun gid ->
          let g = N.gate c gid in
          levels.(g.N.output) <-
            Gate_kind.eval_bool g.N.kind (Array.map (fun sid -> levels.(sid)) g.N.fanin))
        order
  | None -> Alcotest.fail "cycle");
  levels

let bits_of_int ~bits v = List.init bits (fun i -> (v lsr i) land 1 = 1)

let int_of_sigs levels sigs =
  List.fold_left (fun acc (i, sid) -> if levels.(sid) then acc lor (1 lsl i) else acc) 0
    (List.mapi (fun i s -> (i, s)) sigs)

(* --- Generators --- *)

let test_inverter_chain_shape () =
  let c = G.inverter_chain ~n:7 () in
  checki "gates" 7 (N.gate_count c);
  checki "signals" 8 (N.signal_count c);
  let levels = static_eval c ~input_levels:[ true ] in
  let out = match N.find_signal c "out" with Some s -> s | None -> assert false in
  checkb "odd chain inverts" true (not levels.(out))

let test_buffer_tree () =
  let c = G.buffer_tree ~depth:3 () in
  checki "outputs" 8 (List.length (N.primary_outputs c));
  checki "gates" 14 (N.gate_count c);
  let levels = static_eval c ~input_levels:[ true ] in
  List.iter (fun sid -> checkb "leaf" true levels.(sid)) (N.primary_outputs c)

let full_adder_circuit nand_only =
  let b = Builder.create "fa" in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let cin = Builder.input b "cin" in
  let fa = if nand_only then G.full_adder_nand9 else G.full_adder in
  let sum, cout = fa b ~prefix:"fa0" ~a ~b:bb ~cin in
  Builder.mark_output b sum;
  Builder.mark_output b cout;
  (Builder.finalize b, sum, cout)

let check_full_adder nand_only () =
  let c, sum, cout = full_adder_circuit nand_only in
  for i = 0 to 7 do
    let a = i land 4 <> 0 and b = i land 2 <> 0 and ci = i land 1 <> 0 in
    let levels = static_eval c ~input_levels:[ a; b; ci ] in
    let total = Bool.to_int a + Bool.to_int b + Bool.to_int ci in
    checkb (Printf.sprintf "sum %d" i) (total land 1 = 1) levels.(sum);
    checkb (Printf.sprintf "cout %d" i) (total >= 2) levels.(cout)
  done

let test_full_adder_gate_counts () =
  let c5, _, _ = full_adder_circuit false in
  let c9, _, _ = full_adder_circuit true in
  checki "xor/and/or FA" 5 (N.gate_count c5);
  checki "nand9 FA" 9 (N.gate_count c9);
  checkb "nand-only really" true
    (Array.for_all
       (fun (g : N.gate) -> Gate_kind.equal g.N.kind (Gate_kind.Nand 2))
       (N.gates c9))

let test_ripple_carry_adder () =
  let a = G.ripple_carry_adder ~bits:4 () in
  let c = a.G.adder_circuit in
  checki "sum bits" 5 (List.length a.G.sum_bits);
  (* exhaustive over 16x16 *)
  for x = 0 to 15 do
    for y = 0 to 15 do
      let levels =
        static_eval c ~input_levels:(bits_of_int ~bits:4 x @ bits_of_int ~bits:4 y)
      in
      checki (Printf.sprintf "%d+%d" x y) (x + y) (int_of_sigs levels a.G.sum_bits)
    done
  done

let check_multiplier ?(wallace = false) ~nand_only ~m ~n () =
  let mult =
    if wallace then G.wallace_multiplier ~m ~n ()
    else G.array_multiplier ~nand_only ~m ~n ()
  in
  let c = mult.G.mult_circuit in
  checki "product bits" (m + n) (List.length mult.G.product_bits);
  for x = 0 to (1 lsl m) - 1 do
    for y = 0 to (1 lsl n) - 1 do
      let levels =
        static_eval c ~input_levels:(bits_of_int ~bits:m x @ bits_of_int ~bits:n y)
      in
      checki (Printf.sprintf "%dx%d" x y) (x * y) (int_of_sigs levels mult.G.product_bits)
    done
  done

let test_multiplier_asymmetric () = check_multiplier ~nand_only:false ~m:3 ~n:5 ()
let test_multiplier_degenerate () = check_multiplier ~nand_only:false ~m:1 ~n:1 ()

module Equiv = Halotis_netlist.Equiv

let test_cla_exhaustive () =
  let a = G.carry_lookahead_adder ~bits:4 () in
  let c = a.G.adder_circuit in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let levels =
        static_eval c ~input_levels:(bits_of_int ~bits:4 x @ bits_of_int ~bits:4 y)
      in
      checki (Printf.sprintf "%d+%d" x y) (x + y) (int_of_sigs levels a.G.sum_bits)
    done
  done

let test_cla_flatter_than_rca () =
  let rca = G.ripple_carry_adder ~bits:8 () in
  let cla = G.carry_lookahead_adder ~bits:8 () in
  match
    (Check.depth rca.G.adder_circuit, Check.depth cla.G.adder_circuit)
  with
  | Some dr, Some dc -> checkb (Printf.sprintf "cla %d < rca %d" dc dr) true (dc < dr)
  | _, _ -> Alcotest.fail "depth"

let test_equiv_rca_cla () =
  let rca = G.ripple_carry_adder ~bits:4 () in
  let cla = G.carry_lookahead_adder ~bits:4 () in
  checkb "equivalent" true
    (Equiv.check rca.G.adder_circuit cla.G.adder_circuit = Equiv.Equivalent)

let test_equiv_mult_architectures () =
  let array = G.array_multiplier ~m:4 ~n:4 () in
  let tree = G.wallace_multiplier ~m:4 ~n:4 () in
  (* interface differs: the array exposes an extra overflow output *)
  match Equiv.check array.G.mult_circuit tree.G.mult_circuit with
  | Equiv.Incompatible _ ->
      (* compare on the product bits instead *)
      for v = 0 to 255 do
        let inputs = List.init 8 (fun i -> (v lsr i) land 1 = 1) in
        let eval (m : G.multiplier) =
          let levels = static_eval m.G.mult_circuit ~input_levels:inputs in
          int_of_sigs levels m.G.product_bits
        in
        checki (Printf.sprintf "v=%d" v) (eval array) (eval tree)
      done
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ -> Alcotest.fail "multipliers differ"

let test_equiv_detects_difference () =
  let c_and =
    let b = Builder.create "x" in
    let a = Builder.input b "a" in
    let x = Builder.input b "x" in
    let y = Builder.signal b "y" in
    let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g" ~inputs:[ a; x ] ~output:y in
    Builder.mark_output b y;
    Builder.finalize b
  in
  let c_or =
    let b = Builder.create "x" in
    let a = Builder.input b "a" in
    let x = Builder.input b "x" in
    let y = Builder.signal b "y" in
    let _ = Builder.add_gate b (Gate_kind.Or 2) ~name:"g" ~inputs:[ a; x ] ~output:y in
    Builder.mark_output b y;
    Builder.finalize b
  in
  (match Equiv.check c_and c_or with
  | Equiv.Counterexample { inputs; _ } ->
      checki "two inputs" 2 (List.length inputs);
      checkb "pp renders" true
        (String.length (Format.asprintf "%a" Equiv.pp_verdict (Equiv.check c_and c_or)) > 5)
  | Equiv.Equivalent | Equiv.Incompatible _ -> Alcotest.fail "expected counterexample");
  (* incompatible interfaces *)
  let c1 = G.inverter_chain ~n:1 () in
  checkb "incompatible" true
    (match Equiv.check c1 c_and with Equiv.Incompatible _ -> true | Equiv.Equivalent | Equiv.Counterexample _ -> false)

let test_equiv_too_many_inputs () =
  let big = G.random_combinational ~gates:10 ~inputs:20 ~seed:1 () in
  checkb "refused" true
    (match Equiv.check big big with
    | Equiv.Incompatible _ -> true
    | Equiv.Equivalent | Equiv.Counterexample _ -> false)

let test_wallace_shallower () =
  (* the tree's whole point: logarithmic reduction depth *)
  let array = (G.array_multiplier ~m:6 ~n:6 ()).G.mult_circuit in
  let tree = (G.wallace_multiplier ~m:6 ~n:6 ()).G.mult_circuit in
  match (Check.depth array, Check.depth tree) with
  | Some da, Some dt -> checkb (Printf.sprintf "tree %d < array %d" dt da) true (dt < da)
  | _, _ -> Alcotest.fail "depth failed"

let test_fig1_shape () =
  let f = G.fig1_circuit ~vt_low:1.2 ~vt_high:3.8 () in
  let c = f.G.circuit in
  checki "six inverters" 6 (N.gate_count c);
  let g1 = match N.find_gate c "g1" with Some g -> g | None -> assert false in
  let g2 = match N.find_gate c "g2" with Some g -> g | None -> assert false in
  checkb "g1 vt" true ((N.gate c g1).N.input_vt.(0) = Some 1.2);
  checkb "g2 vt" true ((N.gate c g2).N.input_vt.(0) = Some 3.8);
  (* out0 drives both g1 and g2 *)
  checki "out0 fanout" 2 (List.length (N.fanout_gates c f.G.sig_out0))

let test_random_combinational () =
  let c = G.random_combinational ~gates:200 ~inputs:8 ~seed:3 () in
  checki "gates" 200 (N.gate_count c);
  checkb "acyclic" true (Check.topological_gates c <> None);
  checkb "has outputs" true (List.length (N.primary_outputs c) > 0)

let test_random_combinational_deterministic () =
  let c1 = G.random_combinational ~gates:50 ~inputs:4 ~seed:11 () in
  let c2 = G.random_combinational ~gates:50 ~inputs:4 ~seed:11 () in
  Alcotest.(check string) "same netlist" (Hnl.to_string c1) (Hnl.to_string c2)

(* --- HNL --- *)

let test_hnl_roundtrip_simple () =
  let c = G.inverter_chain ~n:3 () in
  match Hnl.parse_string (Hnl.to_string c) with
  | Ok c' -> Alcotest.(check string) "identical print" (Hnl.to_string c) (Hnl.to_string c')
  | Error e -> Alcotest.failf "parse error: %a" Hnl.pp_error e

let test_hnl_roundtrip_attributes () =
  let f = G.fig1_circuit () in
  match Hnl.parse_string (Hnl.to_string f.G.circuit) with
  | Ok c' ->
      Alcotest.(check string) "identical print" (Hnl.to_string f.G.circuit) (Hnl.to_string c');
      let g1 = match N.find_gate c' "g1" with Some g -> g | None -> assert false in
      checkb "vt survives" true ((N.gate c' g1).N.input_vt.(0) = Some 1.5)
  | Error e -> Alcotest.failf "parse error: %a" Hnl.pp_error e

let test_hnl_roundtrip_constants () =
  let a = G.ripple_carry_adder ~bits:2 () in
  match Hnl.parse_string (Hnl.to_string a.G.adder_circuit) with
  | Ok c' ->
      Alcotest.(check string) "identical print"
        (Hnl.to_string a.G.adder_circuit) (Hnl.to_string c')
  | Error e -> Alcotest.failf "parse error: %a" Hnl.pp_error e

let test_hnl_parse_errors () =
  let expect_error text =
    match Hnl.parse_string text with
    | Ok _ -> Alcotest.failf "expected parse failure for %S" text
    | Error _ -> ()
  in
  expect_error "";
  expect_error "circuit c\n";
  (* missing end *)
  expect_error "circuit c\ncircuit d\nend\n";
  (* dup header *)
  expect_error "input a\nend\n";
  (* missing header *)
  expect_error "circuit c\ngate g bogus y a\nend\n";
  (* unknown kind *)
  expect_error "circuit c\ninput a\ngate g inv y a vt9=1.0\nend\n";
  (* pin range *)
  expect_error "circuit c\ninput a\ngate g inv y a\nend\nleftover\n";
  expect_error "circuit c\ninput a\ngate g and2 y a\nend\n" (* arity *)

let test_hnl_comments_and_whitespace () =
  let text =
    "# leading comment\n\
     circuit   demo\n\
     input a b   # two inputs\n\
     output y\n\
     gate g1 nand2 y a b\n\
     end\n"
  in
  match Hnl.parse_string text with
  | Ok c ->
      Alcotest.(check string) "name" "demo" (N.name c);
      checki "gates" 1 (N.gate_count c)
  | Error e -> Alcotest.failf "parse error: %a" Hnl.pp_error e

let test_hnl_file_io () =
  let c = G.inverter_chain ~n:2 () in
  let path = Filename.temp_file "halotis" ".hnl" in
  Hnl.write_file path c;
  (match Hnl.parse_file path with
  | Ok c' -> Alcotest.(check string) "roundtrip" (Hnl.to_string c) (Hnl.to_string c')
  | Error e -> Alcotest.failf "parse error: %a" Hnl.pp_error e);
  Sys.remove path

let prop_hnl_roundtrip_random =
  QCheck.Test.make ~name:"hnl roundtrip on random circuits" ~count:25
    QCheck.(pair (int_range 1 60) (int_range 1 6))
    (fun (gates, inputs) ->
      let c = G.random_combinational ~gates ~inputs ~seed:(gates + (inputs * 1000)) () in
      match Hnl.parse_string (Hnl.to_string c) with
      | Ok c' -> Hnl.to_string c = Hnl.to_string c'
      | Error _ -> false)

(* --- ISCAS .bench --- *)

module Iscas = Halotis_netlist.Iscas
module Verilog = Halotis_netlist.Verilog

let test_c17_parses () =
  let c = Lazy.force Iscas.c17 in
  checki "gates" 6 (N.gate_count c);
  checki "inputs" 5 (List.length (N.primary_inputs c));
  checki "outputs" 2 (List.length (N.primary_outputs c));
  checki "no issues" 0 (List.length (Check.structural_issues c));
  checkb "depth" true (Check.depth c = Some 3)

let test_c17_truth () =
  (* c17: G22 = nand(nand(G1,G3), nand(G2, nand(G3,G6))) *)
  let c = Lazy.force Iscas.c17 in
  let g22 = match N.find_signal c "G22" with Some s -> s | None -> assert false in
  let g23 = match N.find_signal c "G23" with Some s -> s | None -> assert false in
  for v = 0 to 31 do
    let ins = List.init 5 (fun i -> (v lsr i) land 1 = 1) in
    let g1 = List.nth ins 0 and g2 = List.nth ins 1 and g3 = List.nth ins 2 in
    let g6 = List.nth ins 3 and g7 = List.nth ins 4 in
    let nand a b = not (a && b) in
    let g10 = nand g1 g3 and g11 = nand g3 g6 in
    let g16 = nand g2 g11 and g19 = nand g11 g7 in
    let levels = static_eval c ~input_levels:ins in
    checkb (Printf.sprintf "G22 v=%d" v) (nand g10 g16) levels.(g22);
    checkb (Printf.sprintf "G23 v=%d" v) (nand g16 g19) levels.(g23)
  done

let test_iscas_functions () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
     t1 = AND(a, b, c)\nt2 = XNOR(a, b)\nt3 = NOT(c)\nt4 = BUFF(t3)\n\
     y = OR(t1, t2, t4)\n"
  in
  match Iscas.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Iscas.pp_error e
  | Ok c ->
      checki "gates" 5 (N.gate_count c);
      let levels = static_eval c ~input_levels:[ true; true; true ] in
      let y = match N.find_signal c "y" with Some s -> s | None -> assert false in
      checkb "truth" true levels.(y)

let test_iscas_errors () =
  let expect_error text =
    match Iscas.parse_string text with
    | Ok _ -> Alcotest.failf "expected failure for %S" text
    | Error _ -> ()
  in
  expect_error "y = FROB(a)\n";
  expect_error "y = NOT(a, b)\n";
  expect_error "y = AND(a)\n";
  expect_error "gibberish\n";
  expect_error "INPUT(a)\nINPUT(a)\n";
  expect_error "INPUT(a)\ny = NOT(a)\ny = NOT(a)\n"

let test_iscas_file () =
  let path = Filename.temp_file "halotis" ".bench" in
  let oc = open_out path in
  output_string oc "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  close_out oc;
  (match Iscas.parse_file path with
  | Ok c -> checki "one gate" 1 (N.gate_count c)
  | Error e -> Alcotest.failf "parse: %a" Iscas.pp_error e);
  Sys.remove path

(* --- Verilog export --- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_verilog_export () =
  let c = Lazy.force Iscas.c17 in
  let v = Verilog.to_string c in
  checkb "module" true (contains v "module c17 (");
  checkb "endmodule" true (contains v "endmodule");
  checkb "nand prims" true (contains v "nand ");
  checkb "inputs declared" true (contains v "input G1;");
  checkb "outputs declared" true (contains v "output G22;")

let test_verilog_decomposition () =
  let b = Builder.create "cells" in
  let a = Builder.input b "a" in
  let x = Builder.input b "x" in
  let s = Builder.input b "s" in
  let y1 = Builder.signal b "y1" in
  let y2 = Builder.signal b "y2" in
  let _ = Builder.add_gate b Gate_kind.Aoi21 ~name:"g1" ~inputs:[ a; x; s ] ~output:y1 in
  let _ = Builder.add_gate b Gate_kind.Mux2 ~name:"g2" ~inputs:[ a; x; s ] ~output:y2 in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  let c = Builder.finalize b in
  let v = Verilog.to_string c in
  checkb "aoi decomposed" true (contains v "nor g1");
  checkb "mux decomposed" true (contains v "and g2_a");
  checkb "fresh wires" true (contains v "wire halotis_")

let test_verilog_constants_and_attrs () =
  let f = G.fig1_circuit () in
  let rca = G.ripple_carry_adder ~bits:1 () in
  let v1 = Verilog.to_string f.G.circuit in
  checkb "vt comment" true (contains v1 "// vt0=");
  let v2 = Verilog.to_string rca.G.adder_circuit in
  checkb "tie cell" true (contains v2 "assign const_0 = 1'b0;")

let tests =
  [
    ( "netlist.iscas",
      [
        Alcotest.test_case "c17 parses" `Quick test_c17_parses;
        Alcotest.test_case "c17 truth table" `Quick test_c17_truth;
        Alcotest.test_case "functions" `Quick test_iscas_functions;
        Alcotest.test_case "errors" `Quick test_iscas_errors;
        Alcotest.test_case "file" `Quick test_iscas_file;
      ] );
    ( "netlist.verilog",
      [
        Alcotest.test_case "export" `Quick test_verilog_export;
        Alcotest.test_case "decomposition" `Quick test_verilog_decomposition;
        Alcotest.test_case "constants/attrs" `Quick test_verilog_constants_and_attrs;
      ] );
    ( "netlist.builder",
      [
        Alcotest.test_case "basic" `Quick test_builder_basic;
        Alcotest.test_case "find" `Quick test_builder_find;
        Alcotest.test_case "double drive" `Quick test_builder_double_drive;
        Alcotest.test_case "drive input" `Quick test_builder_drive_input;
        Alcotest.test_case "arity mismatch" `Quick test_builder_arity_mismatch;
        Alcotest.test_case "duplicate names" `Quick test_builder_duplicate_names;
        Alcotest.test_case "const shared" `Quick test_builder_const_shared;
        Alcotest.test_case "fresh names" `Quick test_builder_fresh_names_unique;
        Alcotest.test_case "fanout" `Quick test_fanout;
      ] );
    ( "netlist.check",
      [
        Alcotest.test_case "topological order" `Quick test_topo_order;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "clean circuit" `Quick test_issues_clean_circuit;
        Alcotest.test_case "undriven/dangling" `Quick test_undriven_dangling;
        Alcotest.test_case "levelize/depth" `Quick test_levelize_depth;
        Alcotest.test_case "max fanout" `Quick test_max_fanout;
        Alcotest.test_case "transitive fanin" `Quick test_transitive_fanin;
      ] );
    ( "netlist.generators",
      [
        Alcotest.test_case "inverter chain" `Quick test_inverter_chain_shape;
        Alcotest.test_case "buffer tree" `Quick test_buffer_tree;
        Alcotest.test_case "full adder (xor)" `Quick (check_full_adder false);
        Alcotest.test_case "full adder (nand9)" `Quick (check_full_adder true);
        Alcotest.test_case "fa gate counts" `Quick test_full_adder_gate_counts;
        Alcotest.test_case "ripple adder exhaustive" `Quick test_ripple_carry_adder;
        Alcotest.test_case "mult 4x4 exhaustive" `Slow
          (check_multiplier ~nand_only:false ~m:4 ~n:4);
        Alcotest.test_case "mult 4x4 nand exhaustive" `Slow
          (check_multiplier ~nand_only:true ~m:4 ~n:4);
        Alcotest.test_case "mult 3x5" `Quick test_multiplier_asymmetric;
        Alcotest.test_case "wallace 4x4 exhaustive" `Slow
          (check_multiplier ~wallace:true ~nand_only:false ~m:4 ~n:4);
        Alcotest.test_case "wallace 3x5" `Quick
          (check_multiplier ~wallace:true ~nand_only:false ~m:3 ~n:5);
        Alcotest.test_case "wallace 1x1" `Quick
          (check_multiplier ~wallace:true ~nand_only:false ~m:1 ~n:1);
        Alcotest.test_case "wallace shallower" `Quick test_wallace_shallower;
        Alcotest.test_case "cla exhaustive" `Quick test_cla_exhaustive;
        Alcotest.test_case "cla flatter" `Quick test_cla_flatter_than_rca;
        Alcotest.test_case "rca = cla" `Quick test_equiv_rca_cla;
        Alcotest.test_case "array = wallace" `Slow test_equiv_mult_architectures;
        Alcotest.test_case "equiv counterexample" `Quick test_equiv_detects_difference;
        Alcotest.test_case "equiv input limit" `Quick test_equiv_too_many_inputs;
        Alcotest.test_case "mult 1x1" `Quick test_multiplier_degenerate;
        Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
        Alcotest.test_case "random combinational" `Quick test_random_combinational;
        Alcotest.test_case "random deterministic" `Quick
          test_random_combinational_deterministic;
      ] );
    ( "netlist.hnl",
      [
        Alcotest.test_case "roundtrip simple" `Quick test_hnl_roundtrip_simple;
        Alcotest.test_case "roundtrip attributes" `Quick test_hnl_roundtrip_attributes;
        Alcotest.test_case "roundtrip constants" `Quick test_hnl_roundtrip_constants;
        Alcotest.test_case "parse errors" `Quick test_hnl_parse_errors;
        Alcotest.test_case "comments/whitespace" `Quick test_hnl_comments_and_whitespace;
        Alcotest.test_case "file io" `Quick test_hnl_file_io;
        QCheck_alcotest.to_alcotest prop_hnl_roundtrip_random;
      ] );
  ]

(* Parsers must never raise on garbage — they return Error. *)
let prop_hnl_never_raises =
  QCheck.Test.make ~name:"hnl parser total on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun text ->
      match Hnl.parse_string text with Ok _ | Error _ -> true)

let prop_iscas_never_raises =
  QCheck.Test.make ~name:"iscas parser total on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun text ->
      match Iscas.parse_string text with Ok _ | Error _ -> true)

(* Structured garbage: random directive-shaped lines. *)
let prop_hnl_never_raises_structured =
  let line_gen =
    QCheck.Gen.oneofl
      [
        "circuit x";
        "input a b";
        "output y";
        "gate g inv y a";
        "gate g nand2 y a b vt0=1.5";
        "gate g and2 y a const0";
        "end";
        "gate g xor9";
        "input";
        "vt0=oops";
        "# comment";
      ]
  in
  QCheck.Test.make ~name:"hnl parser total on shuffled directives" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 12) line_gen))
    (fun lines ->
      match Hnl.parse_string (String.concat "\n" lines) with Ok _ | Error _ -> true)

let tests =
  tests
  @ [
      ( "netlist.fuzz",
        [
          QCheck_alcotest.to_alcotest prop_hnl_never_raises;
          QCheck_alcotest.to_alcotest prop_iscas_never_raises;
          QCheck_alcotest.to_alcotest prop_hnl_never_raises_structured;
        ] );
    ]

(* --- bench writer --- *)

let test_bench_writer_roundtrip () =
  let c = Lazy.force Iscas.c17 in
  match Iscas.to_string c with
  | Error m -> Alcotest.fail m
  | Ok text -> (
      match Iscas.parse_string ~name:"c17" text with
      | Error e -> Alcotest.failf "reparse: %a" Iscas.pp_error e
      | Ok c2 ->
          checkb "equivalent" true (Equiv.check c c2 = Equiv.Equivalent);
          checki "same gates" (N.gate_count c) (N.gate_count c2))

let test_bench_writer_multiplier () =
  (* the XOR-FA multiplier uses tie cells for the carry-save boundary:
     the writer must refuse it, while the wallace tree (tie cells only
     in the vector merge)... both use const0; refusal expected *)
  let m = G.array_multiplier ~m:2 ~n:2 () in
  (match Iscas.to_string m.G.mult_circuit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal for tie cells");
  (* a cla-free circuit exports fine *)
  let f = G.fig1_circuit () in
  match Iscas.to_string f.G.circuit with
  | Ok text -> checkb "renders" true (String.length text > 50)
  | Error m -> Alcotest.fail m

let test_bench_writer_complex_cells () =
  let b = Builder.create "x" in
  let a = Builder.input b "a" in
  let s = Builder.input b "s" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Mux2 ~name:"g" ~inputs:[ a; a; s ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  match Iscas.to_string c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal for mux2"

(* --- clock helper --- *)

module V2 = Halotis_stim.Vectors

let test_clock_drive () =
  let d = V2.clock ~slope:100. ~period:4000. ~start:1000. ~pulses:3 () in
  checki "six changes" 6 (List.length d.Halotis_engine.Drive.transitions);
  checkb "raises on bad duty" true
    (try
       ignore (V2.clock ~duty:1.5 ~slope:100. ~period:4000. ~start:0. ~pulses:1 ());
       false
     with Invalid_argument _ -> true)

let tests =
  tests
  @ [
      ( "netlist.bench_writer",
        [
          Alcotest.test_case "c17 roundtrip" `Quick test_bench_writer_roundtrip;
          Alcotest.test_case "tie cells refused" `Quick test_bench_writer_multiplier;
          Alcotest.test_case "complex cells refused" `Quick test_bench_writer_complex_cells;
          Alcotest.test_case "clock helper" `Quick test_clock_drive;
        ] );
    ]

(* --- check analyses: levelize, depth, fanin cones, cycles, SCCs --- *)

(* a -> g1 -> g2 -> g3 (chain), plus b joining at g2: depth 3 *)
let chain_circuit () =
  let b = Builder.create "chain" in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let w1 = Builder.signal b "w1" in
  let w2 = Builder.signal b "w2" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g1" ~inputs:[ a ] ~output:w1 in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g2" ~inputs:[ w1; bb ] ~output:w2 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g3" ~inputs:[ w2 ] ~output:y in
  Builder.mark_output b y;
  Builder.finalize b

(* two disjoint feedback loops: {f1,f2} and the self-loop {s} *)
let two_scc_circuit () =
  let b = Builder.create "loops" in
  let a = Builder.input b "a" in
  let w1 = Builder.signal b "w1" in
  let w2 = Builder.signal b "w2" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"f1" ~inputs:[ a; w2 ] ~output:w1 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"f2" ~inputs:[ w1 ] ~output:w2 in
  Builder.mark_output b w1;
  let s = Builder.signal b "s" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"s" ~inputs:[ s; a ] ~output:s in
  Builder.mark_output b s;
  Builder.finalize b

let test_levelize_depth () =
  let c = chain_circuit () in
  (match Check.levelize c with
  | None -> Alcotest.fail "chain is acyclic"
  | Some levels ->
      let level name =
        match N.find_gate c name with
        | Some g -> levels.((g :> int))
        | None -> Alcotest.failf "no gate %s" name
      in
      checki "g1 level" 1 (level "g1");
      checki "g2 level" 2 (level "g2");
      checki "g3 level" 3 (level "g3"));
  checkb "depth" true (Check.depth c = Some 3);
  let empty = Builder.finalize (Builder.create "empty") in
  checkb "empty depth" true (Check.depth empty = Some 0);
  checkb "cyclic depth" true (Check.depth (two_scc_circuit ()) = None)

let test_transitive_fanin () =
  let c = chain_circuit () in
  let names sid =
    Check.transitive_fanin_signals c sid
    |> List.map (N.signal_name c)
    |> List.sort String.compare
  in
  let sig_of name =
    match N.find_signal c name with
    | Some s -> s
    | None -> Alcotest.failf "no signal %s" name
  in
  checkb "cone of y is everything" true
    (names (sig_of "y") = [ "a"; "b"; "w1"; "w2"; "y" ]);
  checkb "cone of w1 excludes b" true (names (sig_of "w1") = [ "a"; "w1" ]);
  checkb "cone of a PI is itself" true (names (sig_of "b") = [ "b" ])

let test_find_cycle_witness () =
  let c = two_scc_circuit () in
  match Check.find_cycle c with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      checkb "non-empty" true (cycle <> []);
      (* each gate's output must feed the next gate (cyclically) *)
      let n = List.length cycle in
      List.iteri
        (fun i g ->
          let next = List.nth cycle ((i + 1) mod n) in
          let out = (N.gate c g).N.output in
          checkb
            (Printf.sprintf "%s feeds %s" (N.gate_name c g) (N.gate_name c next))
            true
            (List.mem next (N.fanout_gates c out)))
        cycle

let test_sccs_enumerates_all () =
  let c = two_scc_circuit () in
  let sccs =
    Check.sccs c
    |> List.map (fun scc -> List.sort String.compare (List.map (N.gate_name c) scc))
    |> List.sort compare
  in
  checkb "both regions, including the self-loop" true
    (sccs = [ [ "f1"; "f2" ]; [ "s" ] ]);
  checki "acyclic circuit has none" 0 (List.length (Check.sccs (chain_circuit ())));
  checki "c17 has none" 0
    (List.length (Check.sccs (Lazy.force Halotis_netlist.Iscas.c17)))

let test_unused_pi_vs_dangling () =
  let b = Builder.create "pins" in
  let a = Builder.input b "a" in
  let _unused = Builder.input b "unused" in
  let d = Builder.signal b "d" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g" ~inputs:[ a ] ~output:d in
  let c = Builder.finalize b in
  let issues = Check.structural_issues c in
  let unused_pis =
    List.filter_map
      (function Check.Unused_primary_input s -> Some (N.signal_name c s) | _ -> None)
      issues
  in
  let dangling =
    List.filter_map
      (function Check.Dangling_signal s -> Some (N.signal_name c s) | _ -> None)
      issues
  in
  checkb "unused PI reported as such" true (unused_pis = [ "unused" ]);
  checkb "dangling internal reported as such" true (dangling = [ "d" ])

let tests =
  tests
  @ [
      ( "netlist.analyses",
        [
          Alcotest.test_case "levelize and depth" `Quick test_levelize_depth;
          Alcotest.test_case "transitive fanin cone" `Quick test_transitive_fanin;
          Alcotest.test_case "cycle witness is a cycle" `Quick test_find_cycle_witness;
          Alcotest.test_case "sccs enumerates all regions" `Quick test_sccs_enumerates_all;
          Alcotest.test_case "unused PI vs dangling" `Quick test_unused_pi_vs_dangling;
        ] );
    ]
