(* The serve stack: protocol codecs, the compiled-circuit LRU, the
   resumable-session facade, and the server dispatch loop.

   The load-bearing property is bit-identity: a session advanced in
   arbitrary steps must produce float-for-float the same waveforms,
   edges, statistics and end time as a one-shot run of the same spec —
   that is what makes interactive stepping trustworthy. *)

module Json = Halotis_util.Json
module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Hnl = Halotis_netlist.Hnl
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Stimfile = Halotis_stim.Stimfile
module Drive = Halotis_engine.Drive
module Sim = Halotis_engine.Sim
module Stats = Halotis_engine.Stats
module Compiled = Halotis_engine.Compiled
module Budget = Halotis_guard.Budget
module Stop = Halotis_guard.Stop
module Prng = Halotis_util.Prng
module Protocol = Halotis_serve.Protocol
module Circuit_cache = Halotis_serve.Circuit_cache
module Server = Halotis_serve.Server

let tech = Halotis_tech.Default_lib.tech
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Protocol round-trip                                                *)
(* ------------------------------------------------------------------ *)

(* Grid floats (multiples of 0.25): exactly representable and printed
   exactly by the emitter's %.12g, so the same generator also drives
   the full wire round-trip below. *)
let grid_float = QCheck.Gen.map (fun n -> float_of_int n *. 0.25) QCheck.Gen.(int_range 0 400_000)
let name_gen = QCheck.Gen.oneofl [ "a"; "b0"; "n_17"; "vm_3_cout"; "clk" ]

let request_gen : Protocol.request QCheck.Gen.t =
  let open QCheck.Gen in
  let opt g = oneof [ return None; map Option.some g ] in
  oneof
    [
      map (fun v -> Protocol.Hello v) (int_range 0 9);
      ( opt (oneofl [ "c17.hnl"; "ring.hnl" ]) >>= fun path ->
        opt name_gen >>= fun stim ->
        opt grid_float >>= fun t_stop ->
        opt (int_range 1 1_000_000) >>= fun max_events ->
        opt (int_range 1 1_000_000) >>= fun max_transitions ->
        opt bool >>= fun watchdog ->
        oneofl [ "ddm"; "cdm" ] >>= fun engine ->
        return
          (Protocol.Load
             {
               Protocol.ld_circuit =
                 (match path with
                 | Some p -> Protocol.Path p
                 | None -> Protocol.Inline "module m\ninput a\nend");
               ld_engine = engine;
               ld_stim = stim;
               ld_t_stop = t_stop;
               ld_max_events = max_events;
               ld_max_transitions = max_transitions;
               ld_watchdog = watchdog;
             }) );
      ( int_range 1 50 >>= fun s ->
        name_gen >>= fun signal ->
        grid_float >>= fun at ->
        bool >>= fun level ->
        opt grid_float >>= fun slope ->
        return
          (Protocol.Set_input
             { si_session = s; si_signal = signal; si_at = at; si_level = level; si_slope = slope })
      );
      ( int_range 1 50 >>= fun s ->
        grid_float >>= fun t ->
        bool >>= fun abs ->
        return
          (Protocol.Advance
             { ad_session = s; ad_upto = (if abs then Protocol.Upto t else Protocol.Dt t) }) );
      ( int_range 1 50 >>= fun s ->
        oneof
          [
            map (fun o -> Protocol.Q_edges o) (opt name_gen);
            map (fun n -> Protocol.Q_waveform n) name_gen;
            map (fun n -> Protocol.Q_offenders n) (int_range 1 20);
            return Protocol.Q_stats;
          ]
        >>= fun q -> return (Protocol.Query { qu_session = s; qu_query = q }) );
      ( int_range 1 50 >>= fun s ->
        name_gen >>= fun signal ->
        grid_float >>= fun at ->
        grid_float >>= fun width ->
        opt grid_float >>= fun slope ->
        bool >>= fun up ->
        return
          (Protocol.Inject
             {
               in_session = s;
               in_signal = signal;
               in_at = at;
               in_width = width +. 0.25;
               in_slope = slope;
               in_up = up;
             }) );
      map (fun s -> Protocol.Close s) (int_range 1 50);
      return Protocol.Cache_stats;
      return Protocol.Shutdown;
    ]

let request_print r = Json.to_string ~indent:false (Protocol.request_to_json r)
let request_arb = QCheck.make ~print:request_print request_gen

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol request round-trip (json level)" ~count:500 request_arb
    (fun r -> Protocol.request_of_json (Protocol.request_to_json r) = Ok r)

let prop_request_wire_roundtrip =
  QCheck.Test.make ~name:"protocol request round-trip (wire level)" ~count:500 request_arb
    (fun r ->
      match Json.parse (Protocol.request_to_line ~id:7 r) with
      | Error _ -> false
      | Ok j -> Protocol.request_of_json j = Ok r)

let response_gen =
  let open QCheck.Gen in
  oneof
    [
      ( int_range 1 99 >>= fun id ->
        grid_float >>= fun v -> return (Protocol.ok ~id (Json.Obj [ ("x", Json.Num v) ])) );
      ( oneof [ return None; map Option.some (int_range 1 99) ] >>= fun id ->
        oneofl [ "parse"; "protocol"; "unknown-session" ] >>= fun code ->
        return (Protocol.err ?id ~code "boom") );
    ]

let prop_response_wire_roundtrip =
  QCheck.Test.make ~name:"protocol response round-trip (wire level)" ~count:300
    (QCheck.make
       ~print:(fun r -> Protocol.response_to_line r)
       response_gen)
    (fun r ->
      match Json.parse (Protocol.response_to_line r) with
      | Error _ -> false
      | Ok j -> Protocol.response_of_json j = Ok r)

(* ------------------------------------------------------------------ *)
(* Stepped advance == one-shot (exact)                                *)
(* ------------------------------------------------------------------ *)

let workload ~gates ~seed =
  let c = G.random_combinational ~gates ~inputs:5 ~seed () in
  let rng = Prng.create ~seed:(seed * 7 + 1) in
  let drives =
    List.map
      (fun s ->
        let changes =
          List.init 5 (fun k ->
              (300. *. float_of_int (k + 1) +. Prng.float rng ~bound:120., Prng.bool rng))
        in
        ( s,
          Drive.of_levels
            ~slope:(20. +. Prng.float rng ~bound:40.)
            ~initial:(Prng.bool rng) changes ))
      (N.primary_inputs c)
  in
  (c, drives)

let check_iddm_equal label (a : Halotis_engine.Iddm.result) (b : Halotis_engine.Iddm.result) =
  let sa = a.Halotis_engine.Iddm.stats and sb = b.Halotis_engine.Iddm.stats in
  let field name fa fb =
    if fa <> fb then Alcotest.failf "%s: %s %d <> %d" label name fa fb
  in
  field "events_scheduled" sa.Stats.events_scheduled sb.Stats.events_scheduled;
  field "events_processed" sa.Stats.events_processed sb.Stats.events_processed;
  field "transitions_emitted" sa.Stats.transitions_emitted sb.Stats.transitions_emitted;
  field "transitions_annulled" sa.Stats.transitions_annulled sb.Stats.transitions_annulled;
  Array.iteri
    (fun sid wa ->
      let wb = b.Halotis_engine.Iddm.waveforms.(sid) in
      if Waveform.segment_count wa <> Waveform.segment_count wb then
        Alcotest.failf "%s: signal %d segment count %d <> %d" label sid
          (Waveform.segment_count wa) (Waveform.segment_count wb);
      for i = 0 to Waveform.segment_count wa - 1 do
        let ta = (Waveform.get_segment wa i).Waveform.transition in
        let tb = (Waveform.get_segment wb i).Waveform.transition in
        if
          ta.Transition.start <> tb.Transition.start
          || ta.Transition.slope_time <> tb.Transition.slope_time
          || (Waveform.get_segment wa i).Waveform.v_start
             <> (Waveform.get_segment wb i).Waveform.v_start
        then Alcotest.failf "%s: signal %d segment %d differs" label sid i
      done)
    a.Halotis_engine.Iddm.waveforms

let stepped_case_gen =
  QCheck.make
    ~print:(fun (gates, seed, ddm, cuts) ->
      Printf.sprintf "gates=%d seed=%d ddm=%b cuts=%d" gates seed ddm cuts)
    QCheck.Gen.(
      (fun gates seed ddm cuts -> (gates, seed, ddm, cuts))
      <$> int_range 5 40 <*> int_range 0 10_000 <*> bool <*> int_range 1 9)

let prop_stepped_equals_oneshot =
  QCheck.Test.make ~name:"advance in steps == one-shot run (exact)" ~count:60
    stepped_case_gen (fun (gates, seed, ddm, cuts) ->
      let c, drives = workload ~gates ~seed in
      let engine = if ddm then Sim.Ddm else Sim.Cdm in
      let spec = Sim.spec ~drives ~tech c in
      let oneshot = Sim.run engine spec in
      let sess = Sim.Session.start engine spec in
      let rng = Prng.create ~seed:(seed * 13 + 3) in
      let instants =
        List.sort compare (List.init cuts (fun _ -> Prng.float rng ~bound:2500.))
      in
      List.iter (fun t -> ignore (Sim.Session.advance sess ~upto:t)) instants;
      let stepped = Sim.Session.advance sess ~upto:infinity in
      let label = Printf.sprintf "gates=%d seed=%d" gates seed in
      (match (Sim.iddm oneshot, Sim.iddm stepped) with
      | Some a, Some b -> check_iddm_equal label a b
      | _ -> Alcotest.failf "%s: missing iddm result" label);
      if oneshot.Sim.rs_end_time <> stepped.Sim.rs_end_time then
        Alcotest.failf "%s: end_time %g <> %g" label oneshot.Sim.rs_end_time
          stepped.Sim.rs_end_time;
      oneshot.Sim.rs_truncated = stepped.Sim.rs_truncated
      && oneshot.Sim.rs_stopped_by = stepped.Sim.rs_stopped_by)

(* ------------------------------------------------------------------ *)
(* Transition cap                                                     *)
(* ------------------------------------------------------------------ *)

let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".."

let data f =
  Filename.concat build_root (Filename.concat "examples" (Filename.concat "data" f))

let fixture_spec ~circuit ~stim ?budget ?watchdog () =
  let c =
    match Hnl.parse_file (data circuit) with
    | Ok c -> c
    | Error _ -> Alcotest.failf "%s did not parse" circuit
  in
  let sf =
    match Stimfile.parse_file (data stim) with
    | Ok s -> s
    | Error _ -> Alcotest.failf "%s did not parse" stim
  in
  let drives = match Stimfile.bind sf c with Ok d -> d | Error m -> Alcotest.fail m in
  Sim.spec ~drives ?budget ?watchdog ~tech c

let check_capped label k (r : Sim.result) =
  checkb (label ^ " stopped by transition cap") true
    (r.Sim.rs_stopped_by = Stop.Transition_cap k);
  checki (label ^ " emitted exactly k") k r.Sim.rs_stats.Stats.transitions_emitted;
  checkb (label ^ " truncated") true r.Sim.rs_truncated

let test_transition_cap () =
  (* The free-running ring emits forever under CDM and classic (no
     degradation), so the cap must stop it at exactly k committed
     transitions; under DDM the circulating pulse attenuates away, so
     the DDM case caps a plain c17 run with a cap below its natural
     transition count instead. *)
  let k = 64 in
  let ring = fixture_spec ~circuit:"ring.hnl" ~stim:"ring.hsv" in
  List.iter
    (fun engine ->
      let r = Sim.run engine (ring ~budget:(Budget.make ~max_transitions:k ()) ()) in
      check_capped (Sim.engine_to_string engine) k r)
    [ Sim.Cdm; Sim.Classic_inertial ];
  let c17 = fixture_spec ~circuit:"c17.hnl" ~stim:"c17_walk.hsv" in
  check_capped "ddm" 3 (Sim.run Sim.Ddm (c17 ~budget:(Budget.make ~max_transitions:3 ()) ()))

let test_transition_cap_stop_meta () =
  let s = Stop.Transition_cap 5 in
  checks "to_string" "transition-cap(5)" (Stop.to_string s);
  checki "exit_code" 3 (Stop.exit_code s);
  checkb "not completed" false (Stop.completed s)

(* ------------------------------------------------------------------ *)
(* Circuit cache                                                      *)
(* ------------------------------------------------------------------ *)

let tiny_compiled source =
  match Hnl.parse_string source with
  | Ok c -> Compiled.compile tech c
  | Error _ -> Alcotest.fail "tiny circuit did not parse"

let test_cache_lru () =
  let cache = Circuit_cache.create ~capacity:2 in
  let srcs =
    Array.map
      (fun name ->
        Printf.sprintf "circuit %s\ninput x y\noutput o\ngate g nand2 o x y\nend" name)
      [| "a"; "b"; "c" |]
  in
  let load i =
    Circuit_cache.find_or_compile cache
      ~key:(Circuit_cache.key_of_source srcs.(i))
      ~compile:(fun () -> tiny_compiled srcs.(i))
  in
  let _, hit0 = load 0 in
  let _, hit0' = load 0 in
  checkb "first load misses" false hit0;
  checkb "second load hits" true hit0';
  let _, _ = load 1 in
  (* full at capacity 2; a's stamp is older than b's, so c evicts a *)
  let _, _ = load 2 in
  checki "one eviction" 1 (Circuit_cache.evictions cache);
  checki "two entries" 2 (Circuit_cache.entries cache);
  let _, hit0'' = load 0 in
  checkb "evicted entry misses again" false hit0'';
  checki "hits" 1 (Circuit_cache.hits cache);
  checki "misses" 4 (Circuit_cache.misses cache);
  (* reloading a evicted b (c was newer); b misses now *)
  let _, hitb = load 1 in
  checkb "LRU victim was b" false hitb

let test_cache_key () =
  checkb "same source, same key" true
    (Circuit_cache.key_of_source "abc" = Circuit_cache.key_of_source "abc");
  checkb "different source, different key" false
    (Circuit_cache.key_of_source "abc" = Circuit_cache.key_of_source "abd")

(* ------------------------------------------------------------------ *)
(* Server dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let mk_conn () =
  let cfg = Server.default_config () in
  let server = Server.create cfg in
  (server, Server.connect server)

let send conn ~id line =
  match Json.parse (Server.handle_line conn line) with
  | Error m -> Alcotest.failf "unparseable response: %s" m
  | Ok j -> (
      (match Json.member "id" j with
      | Some (Json.Num f) -> checki "response id" id (int_of_float f)
      | _ -> Alcotest.fail "response without id");
      match (Json.member "ok" j, Json.member "result" j, Json.member "error" j) with
      | Some (Json.Bool true), Some r, _ -> Ok r
      | Some (Json.Bool false), _, Some e -> (
          match Json.member "code" e with
          | Some (Json.Str c) -> Error c
          | _ -> Alcotest.fail "error without code")
      | _ -> Alcotest.fail "malformed response")

let req ~id fields =
  Json.to_string ~indent:false
    (Json.Obj (("id", Json.Num (float_of_int id)) :: fields))

let hello ~id = req ~id [ ("op", Json.Str "hello"); ("version", Json.Num 1.) ]

let load_c17 ~id =
  req ~id
    [
      ("op", Json.Str "load");
      ("circuit", Json.Str (data "c17.hnl"));
      ("engine", Json.Str "ddm");
      ("stim", Json.Str (data "c17_walk.hsv"));
    ]

let expect_ok label = function
  | Ok r -> r
  | Error c -> Alcotest.failf "%s: unexpected error %s" label c

let expect_err label code = function
  | Ok _ -> Alcotest.failf "%s: expected error %s, got ok" label code
  | Error c -> checks label code c

let num_field name j =
  match Json.member name j with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "missing numeric field %s" name

let test_server_protocol_gate () =
  let _, conn = mk_conn () in
  (* before hello, only hello passes (the rejection still consumes id 1) *)
  expect_err "pre-hello load" "protocol" (send conn ~id:1 (load_c17 ~id:1));
  ignore (expect_ok "hello" (send conn ~id:2 (hello ~id:2)));
  (* an out-of-order id is rejected without consuming the expected id *)
  expect_err "id skip" "protocol" (send conn ~id:7 (load_c17 ~id:7));
  (* parse failure: null id *)
  (match Json.parse (Server.handle_line conn "{nope") with
  | Ok j -> checkb "parse error has null id" true (Json.member "id" j = Some Json.Null)
  | Error m -> Alcotest.failf "unparseable parse-error response: %s" m);
  (* unknown session *)
  expect_err "unknown session" "unknown-session"
    (send conn ~id:3 (req ~id:3 [ ("op", Json.Str "advance"); ("session", Json.Num 9.); ("upto", Json.Num 100.) ]));
  (* classic engine rejected *)
  expect_err "classic rejected" "bad-request"
    (send conn ~id:4
       (req ~id:4
          [
            ("op", Json.Str "load");
            ("circuit", Json.Str (data "c17.hnl"));
            ("engine", Json.Str "classic");
          ]));
  (* past-time stimulus rejected with its Diag code *)
  let s =
    int_of_float (num_field "session" (expect_ok "load" (send conn ~id:5 (load_c17 ~id:5))))
  in
  ignore
    (expect_ok "advance"
       (send conn ~id:6
          (req ~id:6
             [ ("op", Json.Str "advance"); ("session", Json.Num (float_of_int s)); ("upto", Json.Num 5000.) ])));
  expect_err "past-time set_input" "past-time"
    (send conn ~id:7
       (req ~id:7
          [
            ("op", Json.Str "set_input");
            ("session", Json.Num (float_of_int s));
            ("signal", Json.Str "G1");
            ("at", Json.Num 100.);
            ("level", Json.Bool false);
          ]));
  expect_err "set_input on a gate output" "not-an-input"
    (send conn ~id:8
       (req ~id:8
          [
            ("op", Json.Str "set_input");
            ("session", Json.Num (float_of_int s));
            ("signal", Json.Str "G22");
            ("at", Json.Num 6000.);
            ("level", Json.Bool true);
          ]));
  expect_err "unknown signal" "unknown-signal"
    (send conn ~id:9
       (req ~id:9
          [
            ("op", Json.Str "query");
            ("session", Json.Num (float_of_int s));
            ("what", Json.Str "waveform");
            ("signal", Json.Str "nope");
          ]))

(* what a clean (uninjected) one-shot of the c17 walk emits under the
   server's default session guardrails *)
let clean_c17_spec () =
  let d = Server.default_config () in
  fixture_spec ~circuit:"c17.hnl" ~stim:"c17_walk.hsv"
    ~budget:
      (Budget.make ?max_events:d.Server.cf_max_events
         ?max_transitions:d.Server.cf_max_transitions ())
    ~watchdog:(Halotis_guard.Watchdog.config ())
    ()

let test_two_session_isolation () =
  let server, conn = mk_conn () in
  ignore (expect_ok "hello" (send conn ~id:1 (hello ~id:1)));
  let s1 = expect_ok "load 1" (send conn ~id:2 (load_c17 ~id:2)) in
  let s2 = expect_ok "load 2" (send conn ~id:3 (load_c17 ~id:3)) in
  checki "first session id" 1 (int_of_float (num_field "session" s1));
  checki "second session id" 2 (int_of_float (num_field "session" s2));
  checki "second load hits the cache" 1 (Circuit_cache.hits (Server.cache server));
  (* poke session 2's victim; session 1 must see none of it *)
  ignore
    (expect_ok "inject s2"
       (send conn ~id:4
          (req ~id:4
             [
               ("op", Json.Str "inject");
               ("session", Json.Num 2.);
               ("signal", Json.Str "G10");
               ("at", Json.Num 1500.);
               ("width", Json.Num 400.);
             ])));
  let adv sid id =
    expect_ok "advance"
      (send conn ~id
         (req ~id
            [ ("op", Json.Str "advance"); ("session", Json.Num (float_of_int sid)); ("upto", Json.Num 1.0e7) ]))
  in
  let r1 = adv 1 5 in
  let r2 = adv 2 6 in
  (* the splice shows up as extra processed events in session 2 only
     (its pulse is electrically masked downstream, so transition counts
     can tie) *)
  checkb "injected session processes more events" true
    (num_field "events" r2 > num_field "events" r1);
  let wf sid id =
    Json.to_string ~indent:false
      (expect_ok "waveform"
         (send conn ~id
            (req ~id
               [
                 ("op", Json.Str "query");
                 ("session", Json.Num (float_of_int sid));
                 ("what", Json.Str "waveform");
                 ("signal", Json.Str "G10");
               ])))
  in
  let wf1 = wf 1 7 in
  let wf2 = wf 2 8 in
  checkb "victim waveforms diverge" false (wf1 = wf2);
  (* the uninjected session matches a clean one-shot run exactly *)
  let clean = Sim.run Sim.Ddm (clean_c17_spec ()) in
  checki "clean transitions" clean.Sim.rs_stats.Stats.transitions_emitted
    (int_of_float (num_field "transitions" r1));
  checki "clean events" clean.Sim.rs_stats.Stats.events_processed
    (int_of_float (num_field "events" r1));
  (* the wire rounds floats through %.12g, so compare renderings *)
  checks "clean end_time"
    (Json.to_string ~indent:false (Json.Num clean.Sim.rs_end_time))
    (Json.to_string ~indent:false (Json.Num (num_field "end_time" r1)))

(* ------------------------------------------------------------------ *)
(* Json hardening                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_strict () =
  (match Json.parse_strict "{\"a\": 1} garbage" with
  | Error e ->
      checkb "offset points at the garbage" true (e.Json.pe_offset >= 9);
      checkb "message says trailing" true
        (String.length e.Json.pe_msg > 0)
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Json.parse_strict "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted");
  match Json.parse_strict "  [1, 2, 3]  " with
  | Ok (Json.Arr [ Json.Num 1.; Json.Num 2.; Json.Num 3. ]) -> ()
  | _ -> Alcotest.fail "valid input rejected"

let test_lines_reader () =
  let reader = Json.Lines.of_string "a\r\nb\n\nc-torn" in
  Alcotest.(check (list string)) "lines" [ "a"; "b"; "" ] (Json.Lines.to_list reader);
  checks "torn tail survives as leftover" "c-torn" (Json.Lines.leftover reader);
  let r2 = Json.Lines.of_string "x\ny\n" in
  Alcotest.(check (list string)) "clean tail" [ "x"; "y" ] (Json.Lines.to_list r2);
  checks "no leftover" "" (Json.Lines.leftover r2)

(* ------------------------------------------------------------------ *)

let tests =
  [
    ( "serve",
      [
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_request_wire_roundtrip;
        QCheck_alcotest.to_alcotest prop_response_wire_roundtrip;
        QCheck_alcotest.to_alcotest prop_stepped_equals_oneshot;
        Alcotest.test_case "transition cap stops every engine at k" `Quick test_transition_cap;
        Alcotest.test_case "transition cap stop metadata" `Quick test_transition_cap_stop_meta;
        Alcotest.test_case "circuit cache LRU and counters" `Quick test_cache_lru;
        Alcotest.test_case "circuit cache keying" `Quick test_cache_key;
        Alcotest.test_case "server hello gate, ids, error codes" `Quick test_server_protocol_gate;
        Alcotest.test_case "two sessions are isolated" `Quick test_two_session_isolation;
        Alcotest.test_case "Json.parse_strict structured errors" `Quick test_parse_strict;
        Alcotest.test_case "Json.Lines newline reader" `Quick test_lines_reader;
      ] );
  ]
