(* Guardrail layer tests: resource budgets, the oscillation watchdog,
   structured diagnostics, and campaign checkpoint/resume.

   The star fixture is a 3-gate enable-gated ring (examples/data/ring):
   no DC fixed point once [en] rises, so the classic and CDM engines
   spin until something stops them.  Under a degradation-dominant
   technology the IDDM engine quenches the circulating pulse per eq. 1
   — the same netlist that trips the watchdog under CDM quiesces
   naturally under DDM. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Hnl = Halotis_netlist.Hnl
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Stats = Halotis_engine.Stats
module Drive = Halotis_engine.Drive
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Delay_model = Halotis_delay.Delay_model
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Prng = Halotis_util.Prng
module Stop = Halotis_guard.Stop
module Budget = Halotis_guard.Budget
module Watchdog = Halotis_guard.Watchdog
module Diag = Halotis_guard.Diag
module Campaign = Halotis_fault.Campaign
module Journal = Halotis_fault.Journal
module Shard = Halotis_fault.Shard
module Fault_report = Halotis_fault.Fault_report
module Lint = Halotis_lint.Lint
module Finding = Halotis_lint.Finding

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let sid c n =
  match N.find_signal c n with
  | Some s -> s
  | None -> Alcotest.failf "no signal %s" n

let parse src =
  match Hnl.parse_string src with
  | Ok c -> c
  | Error _ -> Alcotest.fail "fixture netlist failed to parse"

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let ring =
  lazy
    (parse
       "circuit ring\n\
        input en\n\
        output c\n\
        gate g_en nand2 a en c\n\
        gate g1 inv b a\n\
        gate g2 inv c b\n\
        end\n")

let ring_drives c =
  [ (sid c "en", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ]

(* NAND latch: a feedback loop with even inversion parity — it has DC
   fixed points and must upset neither the watchdog nor NL008. *)
let latch =
  lazy
    (parse
       "circuit latch\n\
        input s r\n\
        output q qb\n\
        gate g1 nand2 q s qb\n\
        gate g2 nand2 qb r q\n\
        end\n")

(* A non-inverting feedback loop (or2 + two inverters) holding a lone
   circulating pulse: the paper's degradation showcase.  Each lap the
   trailing edge rides a short inter-event time [T] and eq. 1 shaves
   its delay, so the pulse narrows until it is annulled — DDM goes
   quiet on its own.  CDM gives both edges the full [tp0] every lap,
   the pulse circulates essentially forever, and only the watchdog can
   end the spin. *)
let pulse_loop =
  lazy
    (parse
       "circuit pulse_loop\n\
        input trig\n\
        output q\n\
        gate g1 or2 a trig q\n\
        gate g2 inv b a\n\
        gate g3 inv q b\n\
        end\n")

let pulse_loop_drives c =
  [
    ( sid c "trig",
      Drive.of_levels ~slope:20. ~initial:false [ (1_000., true); (1_500., false) ] );
  ]

(* ------------------------------------------------------------------ *)
(* Budget monitor unit tests                                          *)
(* ------------------------------------------------------------------ *)

let test_monitor_exact_events () =
  (* interval smaller than the budget: refill logic must stay exact *)
  let m = Budget.Monitor.create ~interval:4 (Budget.make ~max_events:10 ()) in
  for i = 1 to 10 do
    checkb (Printf.sprintf "event %d allowed" i) true
      (Budget.Monitor.hit m ~queue:0 = None)
  done;
  checki "events seen at the limit" 10 (Budget.Monitor.events_seen m);
  match Budget.Monitor.hit m ~queue:0 with
  | Some (Stop.Event_budget 10) -> ()
  | _ -> Alcotest.fail "11th event must trip the event budget"

let test_monitor_queue_cap () =
  let m = Budget.Monitor.create ~interval:2 (Budget.make ~max_queue:5 ()) in
  let rec spin n =
    if n = 0 then Alcotest.fail "queue cap never tripped"
    else
      match Budget.Monitor.hit m ~queue:10 with
      | Some (Stop.Queue_cap 5) -> ()
      | Some s -> Alcotest.failf "unexpected stop %s" (Stop.to_string s)
      | None -> spin (n - 1)
  in
  spin 50

let test_monitor_unlimited () =
  let m = Budget.Monitor.create ~interval:8 Budget.unlimited in
  for _ = 1 to 1000 do
    checkb "unlimited never trips" true (Budget.Monitor.hit m ~queue:1_000_000 = None)
  done

(* ------------------------------------------------------------------ *)
(* Stop / Diag rendering                                              *)
(* ------------------------------------------------------------------ *)

let test_stop_render () =
  checks "completed" "completed" (Stop.to_string Stop.Completed);
  checks "event budget" "event-budget(42)" (Stop.to_string (Stop.Event_budget 42));
  checks "oscillation" "oscillation(a,b,c)"
    (Stop.to_string (Stop.Oscillation [ "a"; "b"; "c" ]));
  checki "exit completed" 0 (Stop.exit_code Stop.Completed);
  checki "exit budget" 3 (Stop.exit_code (Stop.Event_budget 42));
  checki "exit sim-time" 3 (Stop.exit_code (Stop.Sim_time 1e4));
  checki "exit queue" 3 (Stop.exit_code (Stop.Queue_cap 9));
  checki "exit wall" 3 (Stop.exit_code (Stop.Wall_clock 1.5));
  checki "exit oscillation" 4 (Stop.exit_code (Stop.Oscillation [ "x" ]));
  checkb "completed predicate" true (Stop.completed Stop.Completed);
  checkb "budget not completed" false (Stop.completed (Stop.Event_budget 1))

let test_diag_render () =
  let d =
    Diag.make ~code:"netlist-parse" ~file:"c17.hnl" ~line:12
      ~hint:"see doc/FORMATS.md" "unknown gate kind 'nand9'"
  in
  checks "to_string"
    "error[netlist-parse]: c17.hnl:12: unknown gate kind 'nand9'\n\
    \  hint: see doc/FORMATS.md" (Diag.to_string d);
  let bare = Diag.make ~code:"io" "no such file" in
  checks "bare to_string" "error[io]: no such file" (Diag.to_string bare)

(* ------------------------------------------------------------------ *)
(* Engine-level budget stops                                          *)
(* ------------------------------------------------------------------ *)

(* The ring under classic/CDM with t_stop 100 ns processes ~900 / ~510
   events; budgets well below that must trip. *)

let test_iddm_event_budget_exact () =
  let c = Lazy.force ring in
  let cfg =
    Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000.
      ~budget:(Budget.make ~max_events:50 ())
      DL.tech
  in
  let r = Iddm.run cfg c ~drives:(ring_drives c) in
  checkb "truncated" true r.Iddm.truncated;
  (match r.Iddm.stopped_by with
  | Stop.Event_budget 50 -> ()
  | s -> Alcotest.failf "expected event-budget(50), got %s" (Stop.to_string s));
  checki "exactly 50 events processed" 50 r.Iddm.stats.Stats.events_processed;
  checkb "stats record the stop" true
    (r.Iddm.stats.Stats.stopped_by = Stop.Event_budget 50)

let test_iddm_sim_time_budget () =
  let c = Lazy.force ring in
  let cfg =
    Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000.
      ~budget:(Budget.make ~max_sim_time:5_000. ())
      DL.tech
  in
  let r = Iddm.run cfg c ~drives:(ring_drives c) in
  checkb "truncated" true r.Iddm.truncated;
  (match r.Iddm.stopped_by with
  | Stop.Sim_time 5_000. -> ()
  | s -> Alcotest.failf "expected sim-time(5000), got %s" (Stop.to_string s));
  checkb "end time within budget" true (r.Iddm.end_time <= 5_000.)

let test_classic_event_budget () =
  let c = Lazy.force ring in
  let cfg =
    Classic.config ~t_stop:100_000. ~budget:(Budget.make ~max_events:200 ()) DL.tech
  in
  let r = Classic.run cfg c ~drives:(ring_drives c) in
  checkb "truncated" true r.Classic.truncated;
  (match r.Classic.stopped_by with
  | Stop.Event_budget 200 -> ()
  | s -> Alcotest.failf "expected event-budget(200), got %s" (Stop.to_string s));
  checki "exactly 200 events" 200 r.Classic.stats.Stats.events_processed

(* The budget-limited run must be a prefix of the unlimited one: same
   transitions below the stop time, never anything new. *)
let prop_budget_prefix =
  QCheck.Test.make ~count:20 ~name:"budget-limited IDDM run is a prefix"
    QCheck.(pair (int_range 1 400) (int_range 0 6))
    (fun (k, seed) ->
      let c, drives = Test_perf_equiv.workload ~gates:25 ~seed in
      let full = Iddm.run (Iddm.config ~t_stop:4_000. DL.tech) c ~drives in
      let limited =
        Iddm.run
          (Iddm.config ~t_stop:4_000. ~budget:(Budget.make ~max_events:k ()) DL.tech)
          c ~drives
      in
      if limited.Iddm.truncated then begin
        if limited.Iddm.stats.Stats.events_processed <> k then
          QCheck.Test.fail_reportf "processed %d events under a budget of %d"
            limited.Iddm.stats.Stats.events_processed k;
        if limited.Iddm.end_time > full.Iddm.end_time then
          QCheck.Test.fail_reportf "limited run ran past the full run";
        let cut = limited.Iddm.end_time in
        Array.iteri
          (fun i w ->
            let upto lst =
              List.filter (fun tr -> tr.Transition.start < cut) lst
            in
            let want = upto (Waveform.transitions full.Iddm.waveforms.(i)) in
            let got = upto (Waveform.transitions w) in
            if want <> got then
              QCheck.Test.fail_reportf
                "signal %d diverges below the stop time (budget %d)" i k)
          limited.Iddm.waveforms;
        true
      end
      else begin
        (* budget never tripped: the runs must be identical *)
        if limited.Iddm.stopped_by <> Stop.Completed then
          QCheck.Test.fail_reportf "untruncated run has a stop reason";
        Array.iteri
          (fun i w ->
            if
              Waveform.transitions w
              <> Waveform.transitions full.Iddm.waveforms.(i)
            then QCheck.Test.fail_reportf "signal %d differs without a trip" i)
          limited.Iddm.waveforms;
        true
      end)

(* ------------------------------------------------------------------ *)
(* Oscillation watchdog                                               *)
(* ------------------------------------------------------------------ *)

let wd_trip = Watchdog.config ~window:10_000. ~threshold:10 ()

let test_watchdog_trips_cdm () =
  let c = Lazy.force ring in
  let cfg =
    Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000. ~watchdog:wd_trip
      DL.tech
  in
  let r = Iddm.run cfg c ~drives:(ring_drives c) in
  checkb "truncated" true r.Iddm.truncated;
  match r.Iddm.stopped_by with
  | Stop.Oscillation names ->
      (* the whole feedback SCC is named, not just the hot signal *)
      checkb "names the ring loop" true
        (List.mem "a" names && List.mem "b" names && List.mem "c" names)
  | s -> Alcotest.failf "expected oscillation halt, got %s" (Stop.to_string s)

let test_watchdog_trips_classic () =
  let c = Lazy.force ring in
  let cfg = Classic.config ~t_stop:100_000. ~watchdog:wd_trip DL.tech in
  let r = Classic.run cfg c ~drives:(ring_drives c) in
  checkb "truncated" true r.Classic.truncated;
  match r.Classic.stopped_by with
  | Stop.Oscillation names ->
      checkb "names the ring loop" true
        (List.mem "a" names && List.mem "b" names && List.mem "c" names)
  | s -> Alcotest.failf "expected oscillation halt, got %s" (Stop.to_string s)

(* The headline claim: the identical netlist, drives and watchdog that
   halt CDM complete naturally under DDM — the circulating pulse loses
   width each lap (eq. 1) until it is annulled and the loop goes quiet
   on its own. *)
let test_watchdog_ddm_quiesces () =
  let c = Lazy.force pulse_loop in
  let drives = pulse_loop_drives c in
  let ddm =
    Iddm.run
      (Iddm.config ~delay_kind:Delay_model.Ddm ~t_stop:100_000. ~watchdog:wd_trip
         DL.tech)
      c ~drives
  in
  checkb "DDM quiesces without tripping" true
    (ddm.Iddm.stopped_by = Stop.Completed);
  checkb "not truncated" false ddm.Iddm.truncated;
  let cdm =
    Iddm.run
      (Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000. ~watchdog:wd_trip
         DL.tech)
      c ~drives
  in
  (match cdm.Iddm.stopped_by with
  | Stop.Oscillation names ->
      checkb "names the feedback loop" true
        (List.mem "a" names && List.mem "b" names && List.mem "q" names)
  | s ->
      Alcotest.failf "CDM on the same netlist should trip, got %s"
        (Stop.to_string s));
  (* degradation killed the pulse within a lap or two; CDM was still
     circulating it when halted *)
  let edges r = List.length (Waveform.transitions (Iddm.waveform r "q")) in
  checkb "degradation quenched the pulse" true (edges ddm < edges cdm)

let test_watchdog_degrade_mode () =
  let c = Lazy.force ring in
  let wd = Watchdog.config ~window:10_000. ~threshold:10 ~mode:Watchdog.Degrade () in
  let cfg =
    Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000. ~watchdog:wd DL.tech
  in
  let r = Iddm.run cfg c ~drives:(ring_drives c) in
  (* degrade mode sacrifices the loop, not the run *)
  checkb "run completes" true (r.Iddm.stopped_by = Stop.Completed);
  checkb "not truncated" false r.Iddm.truncated;
  checki "the whole SCC is frozen" 3 (List.length r.Iddm.frozen);
  let frozen_at = List.assoc (sid c "c") r.Iddm.frozen in
  (* no transitions on the frozen signal after the freeze instant *)
  let late =
    List.filter
      (fun tr -> tr.Transition.start > frozen_at)
      (Waveform.transitions (Iddm.waveform r "c"))
  in
  checki "no activity after the freeze" 0 (List.length late)

let test_watchdog_ignores_latch () =
  let c = Lazy.force latch in
  let drives =
    [
      (sid c "s", Drive.of_levels ~slope:50. ~initial:true [ (1_000., false); (2_000., true) ]);
      (sid c "r", Drive.of_levels ~slope:50. ~initial:true [ (4_000., false); (5_000., true) ]);
    ]
  in
  let cfg =
    Iddm.config ~delay_kind:Delay_model.Cdm ~t_stop:100_000. ~watchdog:wd_trip DL.tech
  in
  let r = Iddm.run cfg c ~drives in
  checkb "a settling latch never trips the watchdog" true
    (r.Iddm.stopped_by = Stop.Completed)

(* ------------------------------------------------------------------ *)
(* NL008 oscillation-risk lint                                        *)
(* ------------------------------------------------------------------ *)

let nl008_of c =
  List.filter (fun f -> f.Finding.rule = "NL008") (Lint.run c)

let test_nl008_flags_ring () =
  let fs = nl008_of (Lazy.force ring) in
  checki "ring is flagged once" 1 (List.length fs);
  let f = List.hd fs in
  checkb "mentions the watchdog escape hatch" true
    (let m = f.Finding.message in
     let has needle =
       let nl = String.length needle and ml = String.length m in
       let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
       go 0
     in
     has "--max-events" && has "watchdog")

let test_nl008_spares_latch () =
  checki "even-parity latch is not flagged" 0
    (List.length (nl008_of (Lazy.force latch)))

let test_nl008_flags_ambiguous () =
  (* an XOR in the loop makes parity data-dependent: flag it *)
  let c =
    parse
      "circuit xring\n\
       input en\n\
       output q\n\
       gate g1 xor2 q en fb\n\
       gate g2 buf fb q\n\
       end\n"
  in
  checki "data-dependent loop is flagged" 1 (List.length (nl008_of c))

(* ------------------------------------------------------------------ *)
(* Journal + campaign resume                                          *)
(* ------------------------------------------------------------------ *)

let campaign_fixture =
  lazy
    (let c, drives = Test_perf_equiv.workload ~gates:20 ~seed:11 in
     let cfg = Campaign.config ~seed:3 ~n:12 ~t_stop:4_000. () in
     (c, drives, cfg))

let with_temp_journal f =
  let path = Filename.temp_file "halotis_guard_test" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_resume_byte_identical () =
  let c, drives, cfg = Lazy.force campaign_fixture in
  let straight = Campaign.run cfg DL.tech c ~drives in
  checkb "fixture runs to completion" true straight.Campaign.cam_complete;
  let want_json = Fault_report.to_string straight in
  let want_text = Fault_report.to_text straight in
  with_temp_journal (fun path ->
      (* phase 1: run 5 sites, journaling, then "crash" with a torn tail *)
      let w = Journal.open_new ~sync_every:2 path (Journal.header_of ~circuit:(N.name c) cfg) in
      let part =
        Campaign.run
          ~on_verdict:(fun i v -> Journal.write w i v)
          { cfg with Campaign.limit = Some 5 }
          DL.tech c ~drives
      in
      Journal.close w;
      checkb "parked after the site limit" false part.Campaign.cam_complete;
      checki "five verdicts decided" 5 (List.length part.Campaign.cam_verdicts);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "v 5 17 3 R 0x1.8p+";
      close_out oc;
      (* phase 2: load survives the torn record, resume finishes the rest *)
      let h, indexed = Journal.load path in
      Journal.check h ~circuit:(N.name c) cfg;
      let completed, _ = Journal.partition ~first:0 (Journal.contiguous ~first:0 indexed) in
      checki "torn tail dropped, five verdicts recovered" 5 (List.length completed);
      let w2 = Journal.open_append path in
      let resumed =
        Campaign.run
          ~on_verdict:(fun i v -> Journal.write w2 i v)
          { cfg with Campaign.completed }
          DL.tech c ~drives
      in
      Journal.close w2;
      checkb "resumed campaign completes" true resumed.Campaign.cam_complete;
      checks "JSON report byte-identical" want_json (Fault_report.to_string resumed);
      checks "text report byte-identical" want_text (Fault_report.to_text resumed);
      (* the finished journal now replays to a full verdict list *)
      let _, all_indexed = Journal.load path in
      let all, _ = Journal.partition ~first:0 (Journal.contiguous ~first:0 all_indexed) in
      checki "journal holds every verdict" 12 (List.length all);
      let replay =
        Campaign.run { cfg with Campaign.completed = all } DL.tech c ~drives
      in
      checks "replayed-from-journal report byte-identical" want_json
        (Fault_report.to_string replay))

let test_journal_mismatch_rejected () =
  let c, _, cfg = Lazy.force campaign_fixture in
  with_temp_journal (fun path ->
      let w = Journal.open_new path (Journal.header_of ~circuit:(N.name c) cfg) in
      Journal.close w;
      let h, _ = Journal.load path in
      let other = Campaign.config ~seed:99 ~n:12 ~t_stop:4_000. () in
      match Journal.check h ~circuit:(N.name c) other with
      | () -> Alcotest.fail "seed mismatch must be rejected"
      | exception Diag.Fail d -> checks "diag code" "journal-mismatch" d.Diag.code)

(* ------------------------------------------------------------------ *)
(* Shard journals: merge semantics                                     *)
(* ------------------------------------------------------------------ *)

(* One serial campaign, journaled once; every property case below
   reassembles shard journals out of its bytes. *)
let serial_journal_fixture =
  lazy
    (let c, drives, cfg = Lazy.force campaign_fixture in
     let path = Filename.temp_file "halotis_shard_serial" ".journal" in
     let w = Journal.open_new path (Journal.header_of ~circuit:(N.name c) cfg) in
     let cam = Campaign.run ~on_verdict:(fun i v -> Journal.write w i v) cfg DL.tech c ~drives in
     Journal.close w;
     assert cam.Campaign.cam_complete;
     let header, indexed = Journal.load path in
     let ic = open_in_bin path in
     let text = really_input_string ic (in_channel_length ic) in
     close_in ic;
     Sys.remove path;
     let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' text) in
     match lines with
     | magic :: circuit :: params :: verdict_lines ->
         assert (List.length verdict_lines = List.length indexed);
         ((magic, circuit, params), verdict_lines, header, indexed)
     | _ -> assert false)

let sublist lo hi l = List.filteri (fun i _ -> lo <= i && i < hi) l

(* Shards with arbitrary overlaps and torn tails: merging them must
   reproduce the serial journal whenever their (post-tear) ranges cover
   every site, and [contiguous] must name the gap whenever they don't. *)
let prop_shard_merge_equals_serial =
  let gen =
    QCheck.Gen.(
      2 -- 4 >>= fun jobs ->
      list_repeat jobs (0 -- 2) >>= fun exts ->
      list_repeat jobs bool >>= fun tears -> return (jobs, exts, tears))
  in
  let print (jobs, exts, tears) =
    Printf.sprintf "jobs=%d exts=[%s] tears=[%s]" jobs
      (String.concat ";" (List.map string_of_int exts))
      (String.concat ";" (List.map string_of_bool tears))
  in
  QCheck.Test.make ~count:60
    ~name:"journal merge of overlapping/torn shards equals the serial journal"
    (QCheck.make ~print gen)
    (fun (jobs, exts, tears) ->
      let (magic, circuit, params), verdict_lines, serial_header, serial_indexed =
        Lazy.force serial_journal_fixture
      in
      let total = List.length verdict_lines in
      let covered = Array.make total false in
      let files =
        List.map
          (fun ((lo, hi), (ext, tear)) ->
            let hi = min total (hi + ext) in
            let body = sublist lo hi verdict_lines in
            let tear = tear && body <> [] in
            let cov_hi = if tear then hi - 1 else hi in
            for i = lo to cov_hi - 1 do
              covered.(i) <- true
            done;
            let body =
              if not tear then List.map (fun l -> l ^ "\n") body
              else
                let rec cut = function
                  | [] -> assert false
                  | [ last ] -> [ String.sub last 0 (String.length last / 2) ]
                  | l :: rest -> (l ^ "\n") :: cut rest
                in
                cut body
            in
            let path = Filename.temp_file "halotis_shard_part" ".journal" in
            let oc = open_out_bin path in
            output_string oc (magic ^ "\n" ^ circuit ^ "\n" ^ params ^ "\n");
            output_string oc (Printf.sprintf "! range %d %d\n" lo hi);
            List.iter (output_string oc) body;
            close_out oc;
            path)
          (List.combine (Shard.ranges ~total ~jobs) (List.combine exts tears))
      in
      Fun.protect
        ~finally:(fun () -> List.iter Sys.remove files)
        (fun () ->
          let merged_header, merged = Journal.merge (List.map Journal.load files) in
          let covered_ix =
            List.filter (fun i -> covered.(i)) (List.init total Fun.id)
          in
          (* the merged stream holds exactly the covered sites, with the
             serial journal's verdict for each *)
          merged_header = serial_header
          && List.map fst merged = covered_ix
          && List.for_all
               (fun (i, v) -> List.assoc i serial_indexed = v)
               merged
          &&
          (* a missing suffix is a resumable prefix; an interior gap is
             a merge error naming it *)
          let prefix_len = List.length covered_ix in
          let is_prefix = List.for_all2 ( = ) covered_ix (List.init prefix_len Fun.id) in
          match Journal.contiguous ~first:0 merged with
          | vs -> is_prefix && List.length vs = prefix_len
          | exception Diag.Fail d -> (not is_prefix) && d.Diag.code = "journal-merge"))

(* Worker ranges partition the site list: every campaign size and job
   count, no gaps, no overlaps, balanced to within one site. *)
let prop_shard_ranges_partition =
  QCheck.Test.make ~count:200 ~name:"shard ranges partition the site indices"
    QCheck.(pair (int_range 0 500) (int_range 1 17))
    (fun (total, jobs) ->
      let rs = Shard.ranges ~total ~jobs in
      let sizes = List.map (fun (lo, hi) -> hi - lo) rs in
      List.length rs = jobs
      && List.for_all (fun s -> s >= 0) sizes
      && List.fold_left ( + ) 0 sizes = total
      && fst (List.hd rs) = 0
      && snd (List.nth rs (jobs - 1)) = total
      && List.for_all2
           (fun (_, hi) (lo, _) -> hi = lo)
           (sublist 0 (jobs - 1) rs)
           (List.tl rs)
      && List.for_all (fun s -> abs (s - (total / jobs)) <= 1) sizes)

(* Library-level sharding: running each range separately and handing the
   concatenated verdicts back as [completed] reproduces the serial
   report byte for byte. *)
let test_range_runs_merge_byte_identical () =
  let c, drives, cfg = Lazy.force campaign_fixture in
  let serial = Campaign.run cfg DL.tech c ~drives in
  let verdicts =
    List.concat_map
      (fun range ->
        (Campaign.run { cfg with Campaign.range = Some range } DL.tech c ~drives)
          .Campaign.cam_verdicts)
      (Shard.ranges ~total:serial.Campaign.cam_sites_total ~jobs:3)
  in
  let merged =
    Campaign.run { cfg with Campaign.completed = verdicts } DL.tech c ~drives
  in
  checks "sharded report byte-identical" (Fault_report.to_string serial)
    (Fault_report.to_string merged)

let test_worst_exit_code () =
  checki "no workers" 0 (Stop.worst_exit_code []);
  checki "all clean" 0 (Stop.worst_exit_code [ 0; 0 ]);
  checki "budget beats clean" 3 (Stop.worst_exit_code [ 0; 3; 0 ]);
  checki "oscillation beats budget" 4 (Stop.worst_exit_code [ 3; 4; 0 ]);
  checki "hard error beats everything" 2 (Stop.worst_exit_code [ 4; 2; 3 ])

let test_watchdog_suggest_threshold () =
  let small = Watchdog.suggest_threshold ~scc_gates:3 () in
  let large = Watchdog.suggest_threshold ~scc_gates:40 () in
  checkb "bigger loop, lower threshold" true (large <= small);
  checkb "floor holds" true (Watchdog.suggest_threshold ~scc_gates:100_000 () >= 16);
  checki "zero-size SCC clamps" (Watchdog.suggest_threshold ~scc_gates:1 ())
    (Watchdog.suggest_threshold ~scc_gates:0 ())

let test_site_budget_times_out () =
  let c, drives, cfg0 = Lazy.force campaign_fixture in
  let cfg =
    {
      cfg0 with
      Campaign.n = 4;
      site_budget = Budget.make ~max_events:3 ();
    }
  in
  let cam = Campaign.run cfg DL.tech c ~drives in
  checkb "campaign still completes" true cam.Campaign.cam_complete;
  List.iter
    (fun v ->
      checkb "every strangled site is timed_out" true
        (v.Campaign.vd_outcome = Campaign.Timed_out))
    cam.Campaign.cam_verdicts

let tests =
  [
    ( "guard",
      [
        Alcotest.test_case "budget monitor: exact event count" `Quick
          test_monitor_exact_events;
        Alcotest.test_case "budget monitor: queue cap" `Quick test_monitor_queue_cap;
        Alcotest.test_case "budget monitor: unlimited" `Quick test_monitor_unlimited;
        Alcotest.test_case "stop: rendering and exit codes" `Quick test_stop_render;
        Alcotest.test_case "diag: rendering" `Quick test_diag_render;
        Alcotest.test_case "iddm: exact event budget" `Quick
          test_iddm_event_budget_exact;
        Alcotest.test_case "iddm: sim-time budget" `Quick test_iddm_sim_time_budget;
        Alcotest.test_case "classic: event budget" `Quick test_classic_event_budget;
        QCheck_alcotest.to_alcotest prop_budget_prefix;
        Alcotest.test_case "watchdog: CDM ring trips" `Quick test_watchdog_trips_cdm;
        Alcotest.test_case "watchdog: classic ring trips" `Quick
          test_watchdog_trips_classic;
        Alcotest.test_case "watchdog: DDM ring quiesces (eq. 1)" `Quick
          test_watchdog_ddm_quiesces;
        Alcotest.test_case "watchdog: degrade mode freezes the SCC" `Quick
          test_watchdog_degrade_mode;
        Alcotest.test_case "watchdog: latch never trips" `Quick
          test_watchdog_ignores_latch;
        Alcotest.test_case "lint: NL008 flags the ring" `Quick test_nl008_flags_ring;
        Alcotest.test_case "lint: NL008 spares the NAND latch" `Quick
          test_nl008_spares_latch;
        Alcotest.test_case "lint: NL008 flags data-dependent parity" `Quick
          test_nl008_flags_ambiguous;
        Alcotest.test_case "journal: interrupted resume is byte-identical" `Quick
          test_resume_byte_identical;
        Alcotest.test_case "journal: config mismatch rejected" `Quick
          test_journal_mismatch_rejected;
        QCheck_alcotest.to_alcotest prop_shard_merge_equals_serial;
        QCheck_alcotest.to_alcotest prop_shard_ranges_partition;
        Alcotest.test_case "shard: range runs merge byte-identical" `Quick
          test_range_runs_merge_byte_identical;
        Alcotest.test_case "stop: worst exit code folding" `Quick test_worst_exit_code;
        Alcotest.test_case "watchdog: threshold suggestion" `Quick
          test_watchdog_suggest_threshold;
        Alcotest.test_case "campaign: per-site budget yields timed_out" `Quick
          test_site_budget_times_out;
      ] );
  ]
