(* Unit and property tests for Halotis_util. *)

module Heap = Halotis_util.Heap
module Approx = Halotis_util.Approx
module Prng = Halotis_util.Prng
module Linfit = Halotis_util.Linfit
module Units = Halotis_util.Units
module Json = Halotis_util.Json

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* --- Heap --- *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  checkb "pop none" true (Heap.pop_min h = None);
  checkb "peek none" true (Heap.peek_min h = None)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> ignore (Heap.insert h ~key:k (int_of_float k))) [ 5.; 1.; 3.; 2.; 4. ];
  let order = List.init 5 (fun _ -> match Heap.pop_min h with Some (_, v) -> v | None -> -1) in
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 4; 5 ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> ignore (Heap.insert h ~key:7. v)) [ "a"; "b"; "c" ];
  let order = List.init 3 (fun _ -> match Heap.pop_min h with Some (_, v) -> v | None -> "?") in
  check Alcotest.(list string) "fifo on equal keys" [ "a"; "b"; "c" ] order

let test_heap_remove () =
  let h = Heap.create () in
  let _a = Heap.insert h ~key:1. "a" in
  let b = Heap.insert h ~key:2. "b" in
  let _c = Heap.insert h ~key:3. "c" in
  checkb "remove live" true (Heap.remove h b);
  checkb "remove dead" false (Heap.remove h b);
  checki "length" 2 (Heap.length h);
  let order = List.init 2 (fun _ -> match Heap.pop_min h with Some (_, v) -> v | None -> "?") in
  check Alcotest.(list string) "b gone" [ "a"; "c" ] order

let test_heap_remove_popped () =
  let h = Heap.create () in
  let a = Heap.insert h ~key:1. "a" in
  ignore (Heap.pop_min h);
  checkb "mem after pop" false (Heap.mem h a);
  checkb "remove after pop" false (Heap.remove h a)

let test_heap_key_of () =
  let h = Heap.create () in
  let a = Heap.insert h ~key:4.5 "a" in
  checkb "key" true (Heap.key_of h a = Some 4.5);
  ignore (Heap.pop_min h);
  checkb "key gone" true (Heap.key_of h a = None)

let test_heap_to_sorted_list () =
  let h = Heap.create () in
  List.iter (fun k -> ignore (Heap.insert h ~key:k k)) [ 3.; 1.; 2. ];
  let keys = List.map fst (Heap.to_sorted_list h) in
  check Alcotest.(list (float 0.)) "sorted view" [ 1.; 2.; 3. ] keys;
  checki "non destructive" 3 (Heap.length h)

(* Property: heap pop order equals stable sort by key of the surviving
   inserts, under a random interleaving of inserts and removals. *)
let prop_heap_matches_sorted =
  QCheck.Test.make ~name:"heap pop order = stable sort (with removals)" ~count:200
    QCheck.(list (pair (float_range 0. 100.) bool))
    (fun ops ->
      let h = Heap.create () in
      let live = ref [] in
      List.iteri
        (fun i (key, remove_one) ->
          let handle = Heap.insert h ~key (i, key) in
          live := (handle, (i, key)) :: !live;
          if remove_one && List.length !live > 1 then begin
            match !live with
            | _ :: (victim, _) :: _rest ->
                ignore (Heap.remove h victim);
                live := List.filter (fun (hd, _) -> hd != victim) !live
            | [ _ ] | [] -> ()
          end)
        ops;
      let expected =
        !live
        |> List.map snd
        |> List.sort (fun (i1, k1) (i2, k2) ->
               match Float.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c)
      in
      let popped =
        let rec drain acc =
          match Heap.pop_min h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
        in
        drain []
      in
      popped = expected)

(* --- Approx --- *)

let test_approx_basic () =
  checkb "equal within eps" true (Approx.equal 1.0 (1.0 +. 1e-9));
  checkb "not equal" false (Approx.equal 1.0 1.1);
  checkb "leq" true (Approx.leq 1.0 1.0);
  checkb "lt strict" false (Approx.lt 1.0 (1.0 +. 1e-9));
  checkb "lt true" true (Approx.lt 1.0 2.0);
  checkb "gt" true (Approx.gt 2.0 1.0);
  checkb "geq" true (Approx.geq 1.0 (1.0 +. 1e-9))

let test_approx_clamp () =
  checkf "clamp lo" 0. (Approx.clamp ~lo:0. ~hi:1. (-5.));
  checkf "clamp hi" 1. (Approx.clamp ~lo:0. ~hi:1. 5.);
  checkf "clamp mid" 0.5 (Approx.clamp ~lo:0. ~hi:1. 0.5)

let test_approx_finite () =
  checkb "nan" false (Approx.is_finite Float.nan);
  checkb "inf" false (Approx.is_finite Float.infinity);
  checkb "num" true (Approx.is_finite 3.14)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  let xs g = List.init 20 (fun _ -> Prng.int g ~bound:1000) in
  check Alcotest.(list int) "same seed same stream" (xs a) (xs b)

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xs g = List.init 20 (fun _ -> Prng.int g ~bound:1_000_000) in
  checkb "different seeds differ" false (xs a = xs b)

let test_prng_split () =
  let g = Prng.create ~seed:9 in
  let child = Prng.split g in
  let xs g = List.init 10 (fun _ -> Prng.int g ~bound:1_000_000) in
  checkb "split independent" false (xs g = xs child)

let prop_prng_int_range =
  QCheck.Test.make ~name:"prng int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g ~bound in
      v >= 0 && v < bound)

let prop_prng_float_range =
  QCheck.Test.make ~name:"prng float in range" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.float g ~bound in
      v >= 0. && v < bound)

(* --- Linfit --- *)

let test_linfit_exact_line () =
  let samples = List.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) -. 3.)) in
  match Linfit.linear_regression samples with
  | Some (a, b) ->
      checkf "slope" 2.5 a;
      checkf "intercept" (-3.) b;
      checkf "r2" 1.0 (Linfit.r_squared samples ~a ~b)
  | None -> Alcotest.fail "expected a fit"

let test_linfit_degenerate () =
  checkb "empty" true (Linfit.linear_regression [] = None);
  checkb "single" true (Linfit.linear_regression [ (1., 2.) ] = None);
  checkb "vertical" true (Linfit.linear_regression [ (1., 2.); (1., 3.) ] = None)

let test_linfit_mean () =
  checkf "empty mean" 0. (Linfit.mean []);
  checkf "mean" 2. (Linfit.mean [ 1.; 2.; 3. ])

let prop_linfit_recovers_line =
  QCheck.Test.make ~name:"linfit recovers noiseless lines" ~count:200
    QCheck.(triple (float_range (-10.) 10.) (float_range (-100.) 100.) (int_range 3 30))
    (fun (a, b, n) ->
      let samples = List.init n (fun i -> (float_of_int i, (a *. float_of_int i) +. b)) in
      match Linfit.linear_regression samples with
      | Some (a', b') -> Float.abs (a -. a') < 1e-6 && Float.abs (b -. b') < 1e-4
      | None -> false)

(* --- Units --- *)

let test_units_formatting () =
  check Alcotest.string "ps" "250.0ps" (Units.time_to_string 250.);
  check Alcotest.string "ns" "2.500ns" (Units.time_to_string 2500.);
  checkf "ns conversion" 2.5 (Units.time_to_ns 2500.);
  checkf "ns constructor" 2500. (Units.ns 2.5)

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("tool", Json.Str "halotis");
        ("nums", Json.Arr [ Json.Num 1.; Json.Num (-2.5); Json.Num 0. ]);
        ("flags", Json.Obj [ ("a", Json.Bool true); ("b", Json.Bool false) ]);
        ("nothing", Json.Null);
        ("escaped", Json.Str "quote\" slash\\ newline\n tab\t");
      ]
  in
  (match Json.parse (Json.to_string doc) with
  | Ok doc' -> checkb "round trip" true (doc = doc')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse (Json.to_string ~indent:true doc) with
  | Ok doc' -> checkb "indented round trip" true (doc = doc')
  | Error e -> Alcotest.failf "indented parse failed: %s" e

let test_json_accessors () =
  let doc = Json.Obj [ ("x", Json.Num 3.5); ("s", Json.Str "hi") ] in
  checkb "member" true (Json.member "x" doc = Some (Json.Num 3.5));
  checkb "missing member" true (Json.member "y" doc = None);
  checkb "to_float" true (Json.to_float (Json.Num 3.5) = Some 3.5);
  checkb "to_str" true (Json.to_str (Json.Str "hi") = Some "hi");
  checkb "parse error" true (match Json.parse "{" with Error _ -> true | Ok _ -> false)

let tests =
  [
    ( "util.json",
      [
        Alcotest.test_case "round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "remove" `Quick test_heap_remove;
        Alcotest.test_case "remove popped" `Quick test_heap_remove_popped;
        Alcotest.test_case "key_of" `Quick test_heap_key_of;
        Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list;
        QCheck_alcotest.to_alcotest prop_heap_matches_sorted;
      ] );
    ( "util.approx",
      [
        Alcotest.test_case "comparisons" `Quick test_approx_basic;
        Alcotest.test_case "clamp" `Quick test_approx_clamp;
        Alcotest.test_case "finite" `Quick test_approx_finite;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "split" `Quick test_prng_split;
        QCheck_alcotest.to_alcotest prop_prng_int_range;
        QCheck_alcotest.to_alcotest prop_prng_float_range;
      ] );
    ( "util.linfit",
      [
        Alcotest.test_case "exact line" `Quick test_linfit_exact_line;
        Alcotest.test_case "degenerate" `Quick test_linfit_degenerate;
        Alcotest.test_case "mean" `Quick test_linfit_mean;
        QCheck_alcotest.to_alcotest prop_linfit_recovers_line;
      ] );
    ("util.units", [ Alcotest.test_case "formatting" `Quick test_units_formatting ]);
  ]
