let () =
  Alcotest.run "halotis"
    (Test_util.tests @ Test_logic.tests @ Test_netlist.tests @ Test_wave.tests
   @ Test_tech.tests @ Test_delay.tests @ Test_engine.tests @ Test_analog.tests
   @ Test_stim.tests @ Test_power.tests @ Test_report.tests @ Test_integration.tests
   @ Test_sta.tests @ Test_liberty.tests @ Test_engine_edge.tests
   @ Test_sequential.tests @ Test_cmos.tests @ Test_goldens.tests
   @ Test_lint.tests @ Test_fault.tests @ Test_perf_equiv.tests @ Test_guard.tests
   @ Test_serve.tests @ Test_cli.tests @ Test_supervisor.tests
   @ Test_vary.tests)
