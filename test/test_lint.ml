(* Tests for Halotis_lint: JSON round-trips, the rule registry, and the
   four rule domains on hand-crafted flawed inputs. *)

module Json = Halotis_util.Json
module Finding = Halotis_lint.Finding
module Rule = Halotis_lint.Rule
module Lint = Halotis_lint.Lint
module Netlist_rules = Halotis_lint.Netlist_rules
module Tech_rules = Halotis_lint.Tech_rules
module Liberty_rules = Halotis_lint.Liberty_rules
module Survival_rules = Halotis_lint.Survival_rules
module Stim_rules = Halotis_lint.Stim_rules
module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Liberty = Halotis_liberty.Liberty
module Stimfile = Halotis_stim.Stimfile

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let cfg = Rule.default_config

let rules_fired findings =
  List.sort_uniq String.compare (List.map (fun (f : Finding.t) -> f.Finding.rule) findings)

let fired id findings = List.mem id (rules_fired findings)

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "he said \"hi\"\n\ttab");
        ("count", Json.Num 42.);
        ("ratio", Json.Num 1.5);
        ("neg", Json.Num (-3.25));
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Arr []; Json.Obj [] ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v2 -> checkb "pretty round-trip" true (v = v2)
  | Error e -> Alcotest.fail e);
  match Json.parse (Json.to_string ~indent:false v) with
  | Ok v2 -> checkb "compact round-trip" true (v = v2)
  | Error e -> Alcotest.fail e

let test_json_parse_misc () =
  checkb "unicode escape" true
    (Json.parse {|"aéb"|} = Ok (Json.Str "a\xc3\xa9b"));
  checkb "scientific" true (Json.parse "1.5e3" = Ok (Json.Num 1500.));
  checkb "ws tolerated" true (Json.parse "  [ 1 , 2 ]  " = Ok (Json.Arr [ Json.Num 1.; Json.Num 2. ]));
  checkb "trailing garbage rejected" true (Result.is_error (Json.parse "{} x"));
  checkb "unterminated rejected" true (Result.is_error (Json.parse "[1, 2"));
  checkb "bad literal rejected" true (Result.is_error (Json.parse "flase"))

let test_finding_json_roundtrip () =
  let all_locs =
    [
      Finding.Circuit;
      Finding.Signal "n1";
      Finding.Gate "g1";
      Finding.Gates [ "f1"; "f2"; "f3" ];
      Finding.Pin ("g.with.dots", 2);
      Finding.Kind "nand2";
      Finding.Cell "inv";
      Finding.Entry "a0";
    ]
  in
  List.iter
    (fun location ->
      let f =
        {
          Finding.rule = "NL001";
          severity = Finding.Warning;
          domain = Finding.Netlist;
          location;
          message = "msg with \"quotes\"";
        }
      in
      match Finding.of_json (Finding.to_json f) with
      | Ok f2 -> checkb "finding round-trip" true (f = f2)
      | Error e -> Alcotest.fail e)
    all_locs

let test_report_json_roundtrip () =
  let b = Builder.create "loose" in
  let a = Builder.input b "a" in
  let ghost = Builder.signal b "ghost" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g" ~inputs:[ a; ghost ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let findings = Lint.run c in
  checkb "has findings" true (findings <> []);
  let doc = Json.to_string (Lint.report_to_json findings) in
  match Json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Lint.findings_of_json j with
      | Error e -> Alcotest.fail e
      | Ok back -> checkb "findings survive the document" true (back = findings))

(* --- registry --- *)

let test_registry_sane () =
  let ids = List.map (fun (r : Rule.t) -> r.Rule.id) Rule.all in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun (r : Rule.t) ->
      checkb (r.Rule.id ^ " has doc") true (String.length r.Rule.doc > 10);
      checkb (r.Rule.id ^ " has example") true (String.length r.Rule.example > 0);
      let prefix = String.sub r.Rule.id 0 2 in
      let expected =
        match r.Rule.domain with
        | Finding.Netlist -> "NL"
        | Finding.Tech -> "TK"
        | Finding.Liberty -> "LB"
        | Finding.Stim -> "ST"
      in
      checks (r.Rule.id ^ " prefix") expected prefix)
    Rule.all;
  checkb "find is case-insensitive" true (Rule.find "nl003" = Some Rule.nl003);
  checkb "unknown id" true (Rule.find "XX999" = None)

let test_config_overrides () =
  let config =
    {
      cfg with
      Rule.overrides =
        [ ("NL001", `Off); ("nl001", `On); ("NL002", `Off); ("NL003", `Severity Finding.Info) ];
    }
  in
  checkb "last wins: re-enabled" true (Rule.enabled config Rule.nl001);
  checkb "disabled" false (Rule.enabled config Rule.nl002);
  checkb "default severity" true (Rule.severity config Rule.nl001 = Finding.Error);
  checkb "overridden severity" true (Rule.severity config Rule.nl003 = Finding.Info)

(* --- netlist rules --- *)

(* Two independent feedback pairs, one fed from a PI, one self-fed;
   plus an undriven fanin, a dangling wire, an unused PI and a
   constant-folded gate. *)
let flawed_netlist () =
  let b = Builder.create "flawed" in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let _unused = Builder.input b "unused" in
  let w1 = Builder.signal b "w1" in
  let w2 = Builder.signal b "w2" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"f1" ~inputs:[ a; w2 ] ~output:w1 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"f2" ~inputs:[ w1 ] ~output:w2 in
  let w3 = Builder.signal b "w3" in
  let w4 = Builder.signal b "w4" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"f3" ~inputs:[ w4 ] ~output:w3 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"f4" ~inputs:[ w3 ] ~output:w4 in
  let ghost = Builder.signal b "ghost" in
  let q = Builder.signal b "q" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g1" ~inputs:[ w1; ghost ] ~output:q in
  Builder.mark_output b q;
  let d = Builder.signal b "d" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ bb ] ~output:d in
  let one = Builder.const b Value.L1 in
  let r = Builder.signal b "r" in
  let _ = Builder.add_gate b (Gate_kind.Nor 2) ~name:"g3" ~inputs:[ one; bb ] ~output:r in
  Builder.mark_output b r;
  Builder.finalize b

let test_netlist_rules_fire () =
  let c = flawed_netlist () in
  let findings = Netlist_rules.run cfg c in
  List.iter
    (fun id -> checkb (id ^ " fires") true (fired id findings))
    [ "NL001"; "NL002"; "NL003"; "NL004"; "NL006"; "NL007" ];
  (* both SCCs are reported, not just a single witness cycle *)
  checki "two feedback SCCs" 2
    (List.length
       (List.filter (fun (f : Finding.t) -> f.Finding.rule = "NL003") findings));
  (* the PI-fed loop is reachable; the self-fed one is not *)
  let unreachable =
    List.filter_map
      (fun (f : Finding.t) ->
        if f.Finding.rule = "NL006" then
          match f.Finding.location with Finding.Gate g -> Some g | _ -> None
        else None)
      findings
  in
  checkb "f3 unreachable" true (List.mem "f3" unreachable);
  checkb "f4 unreachable" true (List.mem "f4" unreachable);
  checkb "f1 reachable" false (List.mem "f1" unreachable)

let test_netlist_rules_clean () =
  let c = Lazy.force Halotis_netlist.Iscas.c17 in
  checki "c17 is clean" 0 (List.length (Netlist_rules.run cfg c))

let test_fanout_threshold () =
  let b = Builder.create "fan" in
  let a = Builder.input b "a" in
  for i = 0 to 5 do
    let y = Builder.signal b (Printf.sprintf "y%d" i) in
    let _ = Builder.add_gate b Gate_kind.Inv ~name:(Printf.sprintf "g%d" i) ~inputs:[ a ] ~output:y in
    Builder.mark_output b y
  done;
  let c = Builder.finalize b in
  checkb "quiet at default" false (fired "NL005" (Netlist_rules.run cfg c));
  let tight = { cfg with Rule.fanout_threshold = 4 } in
  checkb "fires when tightened" true (fired "NL005" (Netlist_rules.run tight c))

let test_disable_drops_findings () =
  let c = flawed_netlist () in
  let config = { cfg with Rule.overrides = [ ("NL003", `Off); ("NL006", `Off) ] } in
  let findings = Netlist_rules.run config c in
  checkb "NL003 gone" false (fired "NL003" findings);
  checkb "NL006 gone" false (fired "NL006" findings);
  checkb "others stay" true (fired "NL001" findings)

(* --- tech rules --- *)

let poisoned_tech () =
  let base = Tech.gate_tech DL.tech Gate_kind.Inv in
  let bad_edge =
    {
      base.Tech.rise with
      Tech.s0 = -500.;
      (* tau_out < 0 at light loads: TK001 *)
      ddm_a = -2000.;
      (* tau <= 0: TK002 *)
      ddm_c = 4.;
      (* > VDD/2 = 2.5: TK003 *)
      d0 = -400.;
      (* tp0 <= 0: TK005 *)
    }
  in
  let poisoned = { base with Tech.rise = bad_edge; default_vt = 7. (* TK004 *) } in
  (* TK006 needs both edge delays positive, just wildly asymmetric. *)
  let asym =
    { base with Tech.rise = { base.Tech.rise with Tech.d0 = 10. *. base.Tech.rise.Tech.d0 } }
  in
  let lookup = function Gate_kind.Inv -> poisoned | _ -> asym in
  Tech.create ~name:"poisoned" ~vdd:5. ~lookup ()

let test_tech_rules_fire () =
  let tech = poisoned_tech () in
  let findings = Tech_rules.run_kinds cfg tech [ Gate_kind.Inv; Gate_kind.Buf ] in
  List.iter
    (fun id -> checkb (id ^ " fires") true (fired id findings))
    [ "TK001"; "TK002"; "TK003"; "TK004"; "TK005"; "TK006" ]

let test_tech_rules_clean () =
  let findings = Tech_rules.run_kinds cfg DL.tech Gate_kind.all_basic in
  checki "built-in library is clean" 0 (List.length findings)

let test_tech_rules_pin_override () =
  let b = Builder.create "vt" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ =
    Builder.add_gate b Gate_kind.Inv ~name:"g" ~input_vt:[ Some 6.0 ] ~inputs:[ a ]
      ~output:y
  in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let findings = Tech_rules.run cfg DL.tech c in
  checkb "TK004 on the override" true (fired "TK004" findings);
  match
    List.find_opt (fun (f : Finding.t) -> f.Finding.rule = "TK004") findings
  with
  | Some { Finding.location = Finding.Pin ("g", 0); _ } -> ()
  | Some f -> Alcotest.failf "wrong location: %a" Finding.pp f
  | None -> Alcotest.fail "missing TK004"

(* --- liberty rules --- *)

let flawed_lib_text =
  {|library (flawed) {
  cell (inv) {
    pin (i0) { direction : input; capacitance : 6; }
    pin (y) {
      direction : output;
      timing () {
        related_pin : "i0";
        cell_rise (grid) {
          index_1 ("20, 60, 150");
          index_2 ("4, 10, 25");
          values ("40, 250, 30", "55, 20, 300", "70, 400, 35");
        }
        rise_transition (grid) {
          index_1 ("20, 60, 150");
          index_2 ("4, 10, 25");
          values ("30, 45, 80", "30, 45, 80", "30, 45, 80");
        }
        cell_fall (grid) {
          index_1 ("20, 60, 150");
          index_2 ("4, 10, 25");
          values ("35, 45, 70", "45, 55, 80", "60, 70, 95");
        }
        fall_transition (grid) {
          index_1 ("20, 60, 150");
          index_2 ("4, 10, 25");
          values ("28, 40, 75", "28, 40, 75", "28, 40, 75");
        }
      }
    }
  }
  cell (nand2) {
    pin (i0) { direction : input; capacitance : 5; }
    pin (y) { direction : output; }
  }
}
|}

let test_liberty_rules_fire () =
  match Liberty.parse_string flawed_lib_text with
  | Error e -> Alcotest.failf "parse: %a" Liberty.pp_error e
  | Ok lib ->
      let findings = Liberty_rules.run cfg ~base:DL.tech lib in
      List.iter
        (fun id -> checkb (id ^ " fires") true (fired id findings))
        [ "LB001"; "LB002"; "LB003" ]

let test_liberty_rules_clean () =
  (* A library characterised from the linear model fits it exactly. *)
  let text =
    Halotis_liberty.Writer.of_tech DL.tech ~kinds:[ Gate_kind.Inv; Gate_kind.Nand 2 ]
  in
  match Liberty.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Liberty.pp_error e
  | Ok lib ->
      checki "self-characterised library is clean" 0
        (List.length (Liberty_rules.run cfg ~base:DL.tech lib))

(* --- stim rules --- *)

let test_stim_rules_fire () =
  let c = Lazy.force Halotis_netlist.Iscas.c17 in
  let text =
    "slope 100\n\
     input G1 0 1@1000 0@1050\n\
     input G2 0 1@5000 0@3000\n\
     input G22 0 1@2000\n\
     input nope 0\n"
  in
  match Stimfile.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e
  | Ok stim ->
      let findings = Stim_rules.run cfg stim c in
      List.iter
        (fun id -> checkb (id ^ " fires") true (fired id findings))
        [ "ST001"; "ST002"; "ST003" ];
      checki "two binding faults" 2
        (List.length
           (List.filter (fun (f : Finding.t) -> f.Finding.rule = "ST001") findings))

let test_stim_rules_clean () =
  let c = Lazy.force Halotis_netlist.Iscas.c17 in
  match Stimfile.parse_string "slope 100\ninput G1 0 1@1000 0@3000\n" with
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e
  | Ok stim -> checki "clean stimulus" 0 (List.length (Stim_rules.run cfg stim c))

(* --- engine-level run / exit codes --- *)

let test_exit_codes () =
  let finding rule severity =
    { Finding.rule; severity; domain = Finding.Netlist; location = Finding.Circuit; message = "m" }
  in
  checki "clean" 0 (Lint.exit_code ~strict:false []);
  checki "clean strict" 0 (Lint.exit_code ~strict:true []);
  let warn = [ finding "NL002" Finding.Warning ] in
  checki "warnings lax" 0 (Lint.exit_code ~strict:false warn);
  checki "warnings strict" 1 (Lint.exit_code ~strict:true warn);
  let err = finding "NL001" Finding.Error :: warn in
  checki "errors" 2 (Lint.exit_code ~strict:false err);
  checki "errors strict" 2 (Lint.exit_code ~strict:true err);
  checks "summary counts" "1 error, 1 warning" (Lint.summary err);
  checks "summary clean" "clean" (Lint.summary [])

let test_run_sorts_worst_first () =
  let c = flawed_netlist () in
  let findings = Lint.run c in
  let ranks = List.map (fun (f : Finding.t) -> Finding.severity_rank f.Finding.severity) findings in
  checkb "sorted worst first" true (List.sort (fun a b -> compare b a) ranks = ranks)

let test_preflight_filters_infos () =
  let c = flawed_netlist () in
  let findings = Lint.preflight ~tech:DL.tech c in
  checkb "has findings" true (findings <> []);
  checkb "no infos" true
    (List.for_all (fun (f : Finding.t) -> f.Finding.severity <> Finding.Info) findings)

(* --- survival-backed rules: NL020 and TK007 --- *)

let one_inverter () =
  let b = Builder.create "one" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g" ~inputs:[ a ] ~output:y in
  Builder.mark_output b y;
  Builder.finalize b

(* ddm_c near zero stretches the eq. 3 dead window to tau_in/2, past
   the stage's own (deliberately small) delay: TK007's amplification
   criterion. *)
let amplifying_tech () =
  let base = Tech.gate_tech DL.tech Gate_kind.Inv in
  let hot (p : Tech.edge_params) =
    { p with Tech.d0 = 15.; d_load = 0.5; d_slope = 0.05; ddm_c = 0.1 }
  in
  let cell = { base with Tech.rise = hot base.Tech.rise; fall = hot base.Tech.fall } in
  Tech.create ~name:"amplifying" ~vdd:5. ~lookup:(fun _ -> cell) ()

let test_tk007_fires () =
  let findings = Survival_rules.run cfg (amplifying_tech ()) (one_inverter ()) in
  checkb "TK007 fires" true (fired "TK007" findings);
  match
    List.find_opt (fun (f : Finding.t) -> f.Finding.rule = "TK007") findings
  with
  | Some { Finding.location = Finding.Kind "inv"; _ } -> ()
  | Some f -> Alcotest.failf "wrong location: %a" Finding.pp f
  | None -> Alcotest.fail "missing TK007"

let test_survival_rules_default_clean () =
  checki "built-in library admits no amplification" 0
    (List.length (Survival_rules.run cfg DL.tech (one_inverter ())))

(* The only primary output is a tie cell: no candidate site's pulse can
   reach an observable point, so the fault-site list is degenerate. *)
let test_nl020_degenerate () =
  let b = Builder.create "degen" in
  let a = Builder.input b "a" in
  let zero = Builder.const b Value.L0 in
  let x = Builder.signal b "x" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g" ~inputs:[ a ] ~output:x in
  Builder.mark_output b zero;
  let c = Builder.finalize b in
  let findings = Survival_rules.run cfg DL.tech c in
  checkb "NL020 fires" true (fired "NL020" findings);
  (match
     List.find_opt (fun (f : Finding.t) -> f.Finding.rule = "NL020") findings
   with
  | Some { Finding.location = Finding.Circuit; _ } -> ()
  | Some f -> Alcotest.failf "wrong location: %a" Finding.pp f
  | None -> Alcotest.fail "missing NL020");
  (* an ordinary circuit is not degenerate *)
  checkb "inverter not degenerate" false
    (fired "NL020" (Survival_rules.run cfg DL.tech (one_inverter ())))

(* A cyclic circuit must not crash the lint pass: NL003 owns cycles and
   the survival rules stay silent rather than raising. *)
let test_nl020_cyclic_silent () =
  let b = Builder.create "ring" in
  let x = Builder.signal b "x" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g1" ~inputs:[ x ] ~output:y in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ y ] ~output:x in
  Builder.mark_output b x;
  let c = Builder.finalize b in
  checkb "no NL020 on a cycle" false (fired "NL020" (Survival_rules.run cfg DL.tech c));
  let full = Lint.run ~tech:DL.tech c in
  checkb "full lint still reports the cycle" true (fired "NL003" full)

let tests =
  [
    ( "lint.json",
      [
        Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "parser corners" `Quick test_json_parse_misc;
        Alcotest.test_case "finding round-trip" `Quick test_finding_json_roundtrip;
        Alcotest.test_case "report round-trip" `Quick test_report_json_roundtrip;
      ] );
    ( "lint.registry",
      [
        Alcotest.test_case "registry sane" `Quick test_registry_sane;
        Alcotest.test_case "overrides" `Quick test_config_overrides;
      ] );
    ( "lint.netlist",
      [
        Alcotest.test_case "flawed circuit fires" `Quick test_netlist_rules_fire;
        Alcotest.test_case "c17 clean" `Quick test_netlist_rules_clean;
        Alcotest.test_case "fanout threshold" `Quick test_fanout_threshold;
        Alcotest.test_case "disable drops" `Quick test_disable_drops_findings;
      ] );
    ( "lint.tech",
      [
        Alcotest.test_case "poisoned tech fires" `Quick test_tech_rules_fire;
        Alcotest.test_case "built-in clean" `Quick test_tech_rules_clean;
        Alcotest.test_case "pin override located" `Quick test_tech_rules_pin_override;
      ] );
    ( "lint.survival",
      [
        Alcotest.test_case "TK007 amplifying tech" `Quick test_tk007_fires;
        Alcotest.test_case "built-in clean" `Quick test_survival_rules_default_clean;
        Alcotest.test_case "NL020 degenerate circuit" `Quick test_nl020_degenerate;
        Alcotest.test_case "cyclic stays silent" `Quick test_nl020_cyclic_silent;
      ] );
    ( "lint.liberty",
      [
        Alcotest.test_case "flawed library fires" `Quick test_liberty_rules_fire;
        Alcotest.test_case "self-characterised clean" `Quick test_liberty_rules_clean;
      ] );
    ( "lint.stim",
      [
        Alcotest.test_case "flawed stimulus fires" `Quick test_stim_rules_fire;
        Alcotest.test_case "clean stimulus" `Quick test_stim_rules_clean;
      ] );
    ( "lint.engine",
      [
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "worst first" `Quick test_run_sorts_worst_first;
        Alcotest.test_case "preflight filters infos" `Quick test_preflight_filters_infos;
      ] );
  ]
