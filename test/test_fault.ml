(* Tests for the SET fault-injection subsystem: site enumeration,
   pulse splicing, outcome classification, and campaign determinism. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module T = Halotis_wave.Transition
module D = Halotis_wave.Digital
module W = Halotis_wave.Waveform
module DL = Halotis_tech.Default_lib
module Prng = Halotis_util.Prng
module Sim = Halotis_engine.Sim
module Site = Halotis_fault.Site
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vdd2 = DL.vdd /. 2.

let sid c n =
  match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no signal %s" n

(* --- Inject --- *)

let test_pulse_validation () =
  checkb "negative width raises" true
    (try
       ignore (Inject.pulse ~width:(-1.) ());
       false
     with Invalid_argument _ -> true);
  checkb "zero slope raises" true
    (try
       ignore (Inject.pulse ~slope:0. ~width:100. ());
       false
     with Invalid_argument _ -> true)

let test_pulse_transitions () =
  let p = Inject.pulse ~slope:80. ~width:200. () in
  match Inject.transitions ~at:1000. ~polarity:T.Rising p with
  | [ lead; trail ] ->
      checkb "leading at" true (lead.T.start = 1000.);
      checkb "leading rises" true (lead.T.polarity = T.Rising);
      checkb "leading slope" true (lead.T.slope_time = 80.);
      checkb "trailing at" true (trail.T.start = 1200.);
      checkb "trailing falls" true (trail.T.polarity = T.Falling);
      checkb "trailing slope" true (trail.T.slope_time = 80.)
  | l -> Alcotest.failf "expected 2 transitions, got %d" (List.length l)

(* --- Site --- *)

let chain = lazy (G.inverter_chain ~n:4 ())

let chain_baseline =
  lazy
    (let c = Lazy.force chain in
     Iddm.run
       (Iddm.config ~t_stop:8000. DL.tech)
       c
       ~drives:[ (sid c "in", Drive.constant false) ])

let test_site_candidates () =
  let c = Lazy.force chain in
  let cands = Site.candidates c in
  checki "gate outputs only" (N.gate_count c) (List.length cands);
  checkb "primary input excluded" true (not (List.mem (sid c "in") cands))

let test_site_polarity () =
  let baseline = Lazy.force chain_baseline in
  let c = baseline.Iddm.circuit in
  (* in = 0, so out1 sits high and out2 low: a SET pulls the node the
     other way. *)
  let s1 = Site.of_signal ~baseline (sid c "out1") ~at:2000. in
  let s2 = Site.of_signal ~baseline (sid c "out2") ~at:2000. in
  checkb "high node struck falling" true (s1.Site.st_polarity = T.Falling);
  checkb "low node struck rising" true (s2.Site.st_polarity = T.Rising)

let test_site_sample_deterministic () =
  let baseline = Lazy.force chain_baseline in
  let sample seed =
    Site.sample ~baseline ~prng:(Prng.create ~seed) ~n:16 ~t0:500. ~t1:6000.
  in
  let a = sample 7 and b = sample 7 and c = sample 8 in
  checkb "same seed, same sites" true (List.for_all2 (fun x y -> Site.compare x y = 0) a b);
  checkb "different seed, different sites" true
    (not (List.for_all2 (fun x y -> Site.compare x y = 0) a c))

(* --- Campaign classification --- *)

let strike_chain ~width ~at =
  let c = Lazy.force chain in
  let baseline = Lazy.force chain_baseline in
  let site = Site.of_signal ~baseline (sid c "out1") ~at in
  let cfg =
    Campaign.config ~pulse:(Inject.pulse ~width ()) ~t_stop:8000. ()
  in
  let t =
    Campaign.run ~sites:[ site ] cfg DL.tech c
      ~drives:[ (sid c "in", Drive.constant false) ]
  in
  (List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome

let prop_wide_pulse_propagates =
  QCheck.Test.make ~name:"wide SET always reaches a primary output" ~count:40
    QCheck.(pair (float_range 400. 1000.) (float_range 1000. 5000.))
    (fun (width, at) -> strike_chain ~width ~at = Campaign.Propagated)

let prop_runt_never_propagates =
  (* width <= 15 ps at 100 ps slope peaks at 0.75 V, far below the
     2.5 V threshold: the strike must die electrically, every time. *)
  QCheck.Test.make ~name:"sub-threshold runt never propagates" ~count:40
    QCheck.(pair (float_range 1. 15.) (float_range 1000. 5000.))
    (fun (width, at) -> strike_chain ~width ~at = Campaign.Electrically_masked)

(* The Fig. 1 discrimination scenario, replayed as a fault campaign: a
   runt SET on out0 peaks between the sibling inverters' thresholds,
   so it enters g1 (VT 1.5 V) but never registers at g2 (VT 4.0 V). *)
let test_fig1_split () =
  let f = G.fig1_circuit () in
  let c = f.G.circuit in
  let drives = [ (f.G.sig_in, Drive.constant false) ] in
  let cfg = Iddm.config ~t_stop:6000. DL.tech in
  let baseline = Iddm.run cfg c ~drives in
  let site = Site.of_signal ~baseline f.G.sig_out0 ~at:2000. in
  checkb "out0 low, struck rising" true (site.Site.st_polarity = T.Rising);
  (* 60 ps at 100 ps slope peaks at 3.0 V: between the thresholds. *)
  let injected =
    let r =
      Sim.run Sim.Ddm
        (Sim.spec ~drives ~t_stop:6000.
           ~injections:[ Inject.injection site (Inject.pulse ~width:60. ()) ]
           ~tech:DL.tech c)
    in
    match Sim.iddm r with Some r -> r | None -> assert false
  in
  let tx r s = List.length (W.transitions r.Iddm.waveforms.(s)) in
  checkb "g1 branch disturbed" true (tx injected f.G.sig_out1 > tx baseline f.G.sig_out1);
  checki "g2 output untouched" (tx baseline f.G.sig_out2) (tx injected f.G.sig_out2);
  checki "g2 buffer untouched" (tx baseline f.G.sig_out2c) (tx injected f.G.sig_out2c);
  checkb "victim records the pulse" true (tx injected f.G.sig_out0 > tx baseline f.G.sig_out0)

(* --- Determinism golden --- *)

let test_campaign_reports_reproducible () =
  let c = G.inverter_chain ~n:6 () in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let cfg = Campaign.config ~seed:5 ~n:20 ~t_stop:9000. () in
  let a = Campaign.run cfg DL.tech c ~drives in
  let b = Campaign.run cfg DL.tech c ~drives in
  Alcotest.(check string) "json byte-identical" (Fault_report.to_string a)
    (Fault_report.to_string b);
  Alcotest.(check string) "text byte-identical" (Fault_report.to_text a)
    (Fault_report.to_text b);
  let other = Campaign.run (Campaign.config ~seed:6 ~n:20 ~t_stop:9000. ()) DL.tech c ~drives in
  checkb "different seed samples different sites" true
    (Fault_report.to_string a <> Fault_report.to_string other)

let test_campaign_counts_consistent () =
  let c = G.inverter_chain ~n:6 () in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let t = Campaign.run (Campaign.config ~seed:5 ~n:20 ~t_stop:9000. ()) DL.tech c ~drives in
  let propagated, electrical, logical = Campaign.counts t in
  checki "verdict per injection" 20 (List.length t.Campaign.cam_verdicts);
  checki "counts partition the verdicts" 20 (propagated + electrical + logical);
  checkb "masking rate in [0,1]" true
    (Campaign.masking_rate t >= 0. && Campaign.masking_rate t <= 1.);
  List.iter
    (fun (gid, hits) ->
      checkb "vulnerable gate exists" true (gid >= 0 && gid < N.gate_count c);
      checkb "positive hit count" true (hits > 0))
    (Campaign.vulnerability t)

(* --- Classic engine injections --- *)

let test_classic_strike_not_preempted () =
  (* Driver activity long before the strike must not swallow it: a
     particle hit is not a driver transaction. *)
  let c = Lazy.force chain in
  let input = sid c "in" in
  let drives = [ (input, Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  let cfg = Campaign.config ~engine:Campaign.Classic_inertial ~t_stop:8000. () in
  let baseline = Iddm.run (Iddm.config ~t_stop:8000. DL.tech) c ~drives in
  let site = Site.of_signal ~baseline (sid c "out") ~at:6000. in
  let t = Campaign.run ~sites:[ site ] cfg DL.tech c ~drives in
  checkb "late strike on output propagates" true
    ((List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome = Campaign.Propagated)

(* --- static pruning (Survival) --- *)

(* Headline soundness property: a campaign with [prune = true] returns
   the same verdict for every site as its unpruned twin — across random
   circuits, seeds and both pulse-width engines.  In particular no
   dynamically Propagated site is ever statically pruned. *)
let prop_prune_sound =
  QCheck.Test.make ~name:"static pruning never changes a verdict" ~count:8
    QCheck.(pair (int_range 10 35) (int_range 0 1000))
    (fun (gates, seed) ->
      let c, drives = Test_perf_equiv.workload ~gates ~seed in
      let engine = if seed land 1 = 0 then Campaign.Ddm else Campaign.Cdm in
      let cfg prune =
        Campaign.config ~engine ~seed:(seed + 3) ~n:10 ~prune ~t_stop:12_000. ()
      in
      let plain = Campaign.run (cfg false) DL.tech c ~drives in
      let pruned = Campaign.run (cfg true) DL.tech c ~drives in
      List.length plain.Campaign.cam_verdicts
      = List.length pruned.Campaign.cam_verdicts
      && Campaign.counts plain = Campaign.counts pruned
      && Campaign.timed_out plain = Campaign.timed_out pruned
      && List.for_all2
           (fun (a : Campaign.verdict) (b : Campaign.verdict) ->
             a.Campaign.vd_site = b.Campaign.vd_site
             && (not a.Campaign.vd_pruned)
             && b.Campaign.vd_outcome = a.Campaign.vd_outcome
             && ((not b.Campaign.vd_pruned)
                || b.Campaign.vd_outcome <> Campaign.Propagated))
           plain.Campaign.cam_verdicts pruned.Campaign.cam_verdicts)

(* A runt strike in the long-settled tail of the chain is provably
   electrically masked: the pruner must actually skip it, and skipping
   must not change the verdict. *)
let prune_chain_scenario () =
  let c = Lazy.force chain in
  let drives =
    [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ]
  in
  let baseline = Iddm.run (Iddm.config ~t_stop:30_000. DL.tech) c ~drives in
  let site = Site.of_signal ~baseline (sid c "out1") ~at:25_000. in
  let cfg prune =
    Campaign.config
      ~pulse:(Inject.pulse ~width:40. ~slope:100. ())
      ~prune ~t_stop:30_000. ()
  in
  (c, drives, site, cfg)

let test_prune_skips_proven_site () =
  let c, drives, site, cfg = prune_chain_scenario () in
  let plain = Campaign.run ~sites:[ site ] (cfg false) DL.tech c ~drives in
  let pruned = Campaign.run ~sites:[ site ] (cfg true) DL.tech c ~drives in
  checki "simulated run prunes nothing" 0 (Campaign.pruned_count plain);
  checki "static run prunes the site" 1 (Campaign.pruned_count pruned);
  let vp = List.hd plain.Campaign.cam_verdicts in
  let vs = List.hd pruned.Campaign.cam_verdicts in
  checkb "verdict agrees with simulation" true
    (vs.Campaign.vd_outcome = vp.Campaign.vd_outcome);
  checkb "pruned verdict is a masking one" true
    (vs.Campaign.vd_outcome = Campaign.Electrically_masked
    || vs.Campaign.vd_outcome = Campaign.Logically_masked);
  (* taxonomy summaries stay byte-identical *)
  checkb "counts identical" true (Campaign.counts plain = Campaign.counts pruned)

module Journal = Halotis_fault.Journal

(* Journal format v2: pruned verdicts round-trip with their flag, the
   header records the prune mode, and a v2 journal from a pruned
   campaign is rejected against an unpruned config. *)
let test_journal_v2_pruned_roundtrip () =
  let c, drives, site, cfg = prune_chain_scenario () in
  let path = Filename.temp_file "halotis_fault_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w =
        Journal.open_new path (Journal.header_of ~circuit:(N.name c) (cfg true))
      in
      let t =
        Campaign.run ~sites:[ site ]
          ~on_verdict:(fun i v -> Journal.write w i v)
          (cfg true) DL.tech c ~drives
      in
      Journal.close w;
      checki "campaign pruned the site" 1 (Campaign.pruned_count t);
      let h, indexed = Journal.load path in
      checkb "header records prune mode" true h.Journal.jh_prune;
      Journal.check h ~circuit:(N.name c) (cfg true);
      (match Journal.contiguous ~first:0 indexed with
      | [ v ] ->
          checkb "pruned flag round-trips" true v.Campaign.vd_pruned;
          checkb "outcome round-trips" true
            (v.Campaign.vd_outcome
            = (List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome)
      | l -> Alcotest.failf "expected one verdict, got %d" (List.length l));
      match Journal.check h ~circuit:(N.name c) (cfg false) with
      | () -> Alcotest.fail "prune-mode mismatch must be rejected"
      | exception Halotis_guard.Diag.Fail d ->
          Alcotest.(check string)
            "diag code" "journal-mismatch" d.Halotis_guard.Diag.code)

let test_engine_of_string () =
  checkb "ddm" true (Campaign.engine_of_string "ddm" = Some Campaign.Ddm);
  checkb "cdm" true (Campaign.engine_of_string "cdm" = Some Campaign.Cdm);
  checkb "classic" true
    (Campaign.engine_of_string "classic" = Some Campaign.Classic_inertial);
  checkb "unknown" true (Campaign.engine_of_string "spice" = None)

let tests =
  [
    ( "fault.inject",
      [
        Alcotest.test_case "pulse validation" `Quick test_pulse_validation;
        Alcotest.test_case "pulse transitions" `Quick test_pulse_transitions;
      ] );
    ( "fault.site",
      [
        Alcotest.test_case "candidates" `Quick test_site_candidates;
        Alcotest.test_case "polarity from baseline" `Quick test_site_polarity;
        Alcotest.test_case "sample determinism" `Quick test_site_sample_deterministic;
      ] );
    ( "fault.campaign",
      [
        QCheck_alcotest.to_alcotest prop_wide_pulse_propagates;
        QCheck_alcotest.to_alcotest prop_runt_never_propagates;
        Alcotest.test_case "fig1 threshold split" `Quick test_fig1_split;
        Alcotest.test_case "reports reproducible" `Quick test_campaign_reports_reproducible;
        Alcotest.test_case "counts consistent" `Quick test_campaign_counts_consistent;
        Alcotest.test_case "classic strike not preempted" `Quick
          test_classic_strike_not_preempted;
        Alcotest.test_case "engine names" `Quick test_engine_of_string;
      ] );
    ( "fault.prune",
      [
        QCheck_alcotest.to_alcotest prop_prune_sound;
        Alcotest.test_case "proven site skipped" `Quick test_prune_skips_proven_site;
        Alcotest.test_case "journal v2 round-trip" `Quick
          test_journal_v2_pruned_roundtrip;
      ] );
  ]
