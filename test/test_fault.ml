(* Tests for the SET fault-injection subsystem: site enumeration,
   pulse splicing, outcome classification, and campaign determinism. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module T = Halotis_wave.Transition
module D = Halotis_wave.Digital
module W = Halotis_wave.Waveform
module DL = Halotis_tech.Default_lib
module Prng = Halotis_util.Prng
module Sim = Halotis_engine.Sim
module Site = Halotis_fault.Site
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vdd2 = DL.vdd /. 2.

let sid c n =
  match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no signal %s" n

(* --- Inject --- *)

let test_pulse_validation () =
  checkb "negative width raises" true
    (try
       ignore (Inject.pulse ~width:(-1.) ());
       false
     with Invalid_argument _ -> true);
  checkb "zero slope raises" true
    (try
       ignore (Inject.pulse ~slope:0. ~width:100. ());
       false
     with Invalid_argument _ -> true)

let test_pulse_transitions () =
  let p = Inject.pulse ~slope:80. ~width:200. () in
  match Inject.transitions ~at:1000. ~polarity:T.Rising p with
  | [ lead; trail ] ->
      checkb "leading at" true (lead.T.start = 1000.);
      checkb "leading rises" true (lead.T.polarity = T.Rising);
      checkb "leading slope" true (lead.T.slope_time = 80.);
      checkb "trailing at" true (trail.T.start = 1200.);
      checkb "trailing falls" true (trail.T.polarity = T.Falling);
      checkb "trailing slope" true (trail.T.slope_time = 80.)
  | l -> Alcotest.failf "expected 2 transitions, got %d" (List.length l)

(* --- Site --- *)

let chain = lazy (G.inverter_chain ~n:4 ())

let chain_baseline =
  lazy
    (let c = Lazy.force chain in
     Iddm.run
       (Iddm.config ~t_stop:8000. DL.tech)
       c
       ~drives:[ (sid c "in", Drive.constant false) ])

let test_site_candidates () =
  let c = Lazy.force chain in
  let cands = Site.candidates c in
  checki "gate outputs only" (N.gate_count c) (List.length cands);
  checkb "primary input excluded" true (not (List.mem (sid c "in") cands))

let test_site_polarity () =
  let baseline = Lazy.force chain_baseline in
  let c = baseline.Iddm.circuit in
  (* in = 0, so out1 sits high and out2 low: a SET pulls the node the
     other way. *)
  let s1 = Site.of_signal ~baseline (sid c "out1") ~at:2000. in
  let s2 = Site.of_signal ~baseline (sid c "out2") ~at:2000. in
  checkb "high node struck falling" true (s1.Site.st_polarity = T.Falling);
  checkb "low node struck rising" true (s2.Site.st_polarity = T.Rising)

let test_site_sample_deterministic () =
  let baseline = Lazy.force chain_baseline in
  let sample seed =
    Site.sample ~baseline ~prng:(Prng.create ~seed) ~n:16 ~t0:500. ~t1:6000.
  in
  let a = sample 7 and b = sample 7 and c = sample 8 in
  checkb "same seed, same sites" true (List.for_all2 (fun x y -> Site.compare x y = 0) a b);
  checkb "different seed, different sites" true
    (not (List.for_all2 (fun x y -> Site.compare x y = 0) a c))

(* --- Campaign classification --- *)

let strike_chain ~width ~at =
  let c = Lazy.force chain in
  let baseline = Lazy.force chain_baseline in
  let site = Site.of_signal ~baseline (sid c "out1") ~at in
  let cfg =
    Campaign.config ~pulse:(Inject.pulse ~width ()) ~t_stop:8000. ()
  in
  let t =
    Campaign.run
      { cfg with Campaign.sites = Some [ site ] }
      DL.tech c
      ~drives:[ (sid c "in", Drive.constant false) ]
  in
  (List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome

let prop_wide_pulse_propagates =
  QCheck.Test.make ~name:"wide SET always reaches a primary output" ~count:40
    QCheck.(pair (float_range 400. 1000.) (float_range 1000. 5000.))
    (fun (width, at) -> strike_chain ~width ~at = Campaign.Propagated)

let prop_runt_never_propagates =
  (* width <= 15 ps at 100 ps slope peaks at 0.75 V, far below the
     2.5 V threshold: the strike must die electrically, every time. *)
  QCheck.Test.make ~name:"sub-threshold runt never propagates" ~count:40
    QCheck.(pair (float_range 1. 15.) (float_range 1000. 5000.))
    (fun (width, at) -> strike_chain ~width ~at = Campaign.Electrically_masked)

(* The Fig. 1 discrimination scenario, replayed as a fault campaign: a
   runt SET on out0 peaks between the sibling inverters' thresholds,
   so it enters g1 (VT 1.5 V) but never registers at g2 (VT 4.0 V). *)
let test_fig1_split () =
  let f = G.fig1_circuit () in
  let c = f.G.circuit in
  let drives = [ (f.G.sig_in, Drive.constant false) ] in
  let cfg = Iddm.config ~t_stop:6000. DL.tech in
  let baseline = Iddm.run cfg c ~drives in
  let site = Site.of_signal ~baseline f.G.sig_out0 ~at:2000. in
  checkb "out0 low, struck rising" true (site.Site.st_polarity = T.Rising);
  (* 60 ps at 100 ps slope peaks at 3.0 V: between the thresholds. *)
  let injected =
    let r =
      Sim.run Sim.Ddm
        (Sim.spec ~drives ~t_stop:6000.
           ~injections:[ Inject.injection site (Inject.pulse ~width:60. ()) ]
           ~tech:DL.tech c)
    in
    match Sim.iddm r with Some r -> r | None -> assert false
  in
  let tx r s = List.length (W.transitions r.Iddm.waveforms.(s)) in
  checkb "g1 branch disturbed" true (tx injected f.G.sig_out1 > tx baseline f.G.sig_out1);
  checki "g2 output untouched" (tx baseline f.G.sig_out2) (tx injected f.G.sig_out2);
  checki "g2 buffer untouched" (tx baseline f.G.sig_out2c) (tx injected f.G.sig_out2c);
  checkb "victim records the pulse" true (tx injected f.G.sig_out0 > tx baseline f.G.sig_out0)

(* --- Determinism golden --- *)

let test_campaign_reports_reproducible () =
  let c = G.inverter_chain ~n:6 () in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let cfg = Campaign.config ~seed:5 ~n:20 ~t_stop:9000. () in
  let a = Campaign.run cfg DL.tech c ~drives in
  let b = Campaign.run cfg DL.tech c ~drives in
  Alcotest.(check string) "json byte-identical" (Fault_report.to_string a)
    (Fault_report.to_string b);
  Alcotest.(check string) "text byte-identical" (Fault_report.to_text a)
    (Fault_report.to_text b);
  let other = Campaign.run (Campaign.config ~seed:6 ~n:20 ~t_stop:9000. ()) DL.tech c ~drives in
  checkb "different seed samples different sites" true
    (Fault_report.to_string a <> Fault_report.to_string other)

let test_campaign_counts_consistent () =
  let c = G.inverter_chain ~n:6 () in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let t = Campaign.run (Campaign.config ~seed:5 ~n:20 ~t_stop:9000. ()) DL.tech c ~drives in
  let propagated, electrical, logical = Campaign.counts t in
  checki "verdict per injection" 20 (List.length t.Campaign.cam_verdicts);
  checki "counts partition the verdicts" 20 (propagated + electrical + logical);
  checkb "masking rate in [0,1]" true
    (Campaign.masking_rate t >= 0. && Campaign.masking_rate t <= 1.);
  List.iter
    (fun (gid, hits) ->
      checkb "vulnerable gate exists" true (gid >= 0 && gid < N.gate_count c);
      checkb "positive hit count" true (hits > 0))
    (Campaign.vulnerability t)

(* --- Classic engine injections --- *)

let test_classic_strike_not_preempted () =
  (* Driver activity long before the strike must not swallow it: a
     particle hit is not a driver transaction. *)
  let c = Lazy.force chain in
  let input = sid c "in" in
  let drives = [ (input, Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  let cfg = Campaign.config ~engine:Campaign.Classic_inertial ~t_stop:8000. () in
  let baseline = Iddm.run (Iddm.config ~t_stop:8000. DL.tech) c ~drives in
  let site = Site.of_signal ~baseline (sid c "out") ~at:6000. in
  let t =
    Campaign.run { cfg with Campaign.sites = Some [ site ] } DL.tech c ~drives
  in
  checkb "late strike on output propagates" true
    ((List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome = Campaign.Propagated)

(* --- static pruning (Survival) --- *)

(* Headline soundness property: a campaign with [prune = true] returns
   the same verdict for every site as its unpruned twin — across random
   circuits, seeds and both pulse-width engines.  In particular no
   dynamically Propagated site is ever statically pruned. *)
let prop_prune_sound =
  QCheck.Test.make ~name:"static pruning never changes a verdict" ~count:8
    QCheck.(pair (int_range 10 35) (int_range 0 1000))
    (fun (gates, seed) ->
      let c, drives = Test_perf_equiv.workload ~gates ~seed in
      let engine = if seed land 1 = 0 then Campaign.Ddm else Campaign.Cdm in
      let cfg prune =
        Campaign.config ~engine ~seed:(seed + 3) ~n:10 ~prune ~t_stop:12_000. ()
      in
      let plain = Campaign.run (cfg false) DL.tech c ~drives in
      let pruned = Campaign.run (cfg true) DL.tech c ~drives in
      List.length plain.Campaign.cam_verdicts
      = List.length pruned.Campaign.cam_verdicts
      && Campaign.counts plain = Campaign.counts pruned
      && Campaign.timed_out plain = Campaign.timed_out pruned
      && List.for_all2
           (fun (a : Campaign.verdict) (b : Campaign.verdict) ->
             a.Campaign.vd_site = b.Campaign.vd_site
             && (not a.Campaign.vd_pruned)
             && b.Campaign.vd_outcome = a.Campaign.vd_outcome
             && ((not b.Campaign.vd_pruned)
                || b.Campaign.vd_outcome <> Campaign.Propagated))
           plain.Campaign.cam_verdicts pruned.Campaign.cam_verdicts)

(* A runt strike in the long-settled tail of the chain is provably
   electrically masked: the pruner must actually skip it, and skipping
   must not change the verdict. *)
let prune_chain_scenario () =
  let c = Lazy.force chain in
  let drives =
    [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ]
  in
  let baseline = Iddm.run (Iddm.config ~t_stop:30_000. DL.tech) c ~drives in
  let site = Site.of_signal ~baseline (sid c "out1") ~at:25_000. in
  let cfg prune =
    Campaign.config
      ~pulse:(Inject.pulse ~width:40. ~slope:100. ())
      ~prune ~t_stop:30_000. ()
  in
  (c, drives, site, cfg)

let test_prune_skips_proven_site () =
  let c, drives, site, cfg = prune_chain_scenario () in
  let with_site cfg = { cfg with Campaign.sites = Some [ site ] } in
  let plain = Campaign.run (with_site (cfg false)) DL.tech c ~drives in
  let pruned = Campaign.run (with_site (cfg true)) DL.tech c ~drives in
  checki "simulated run prunes nothing" 0 (Campaign.pruned_count plain);
  checki "static run prunes the site" 1 (Campaign.pruned_count pruned);
  let vp = List.hd plain.Campaign.cam_verdicts in
  let vs = List.hd pruned.Campaign.cam_verdicts in
  checkb "verdict agrees with simulation" true
    (vs.Campaign.vd_outcome = vp.Campaign.vd_outcome);
  checkb "pruned verdict is a masking one" true
    (vs.Campaign.vd_outcome = Campaign.Electrically_masked
    || vs.Campaign.vd_outcome = Campaign.Logically_masked);
  (* taxonomy summaries stay byte-identical *)
  checkb "counts identical" true (Campaign.counts plain = Campaign.counts pruned)

module Journal = Halotis_fault.Journal

(* Journal format v2: pruned verdicts round-trip with their flag, the
   header records the prune mode, and a v2 journal from a pruned
   campaign is rejected against an unpruned config. *)
let test_journal_v2_pruned_roundtrip () =
  let c, drives, site, cfg = prune_chain_scenario () in
  let path = Filename.temp_file "halotis_fault_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w =
        Journal.open_new path (Journal.header_of ~circuit:(N.name c) (cfg true))
      in
      let t =
        Campaign.run
          ~on_verdict:(fun i v -> Journal.write w i v)
          { (cfg true) with Campaign.sites = Some [ site ] }
          DL.tech c ~drives
      in
      Journal.close w;
      checki "campaign pruned the site" 1 (Campaign.pruned_count t);
      let h, indexed = Journal.load path in
      checkb "header records prune mode" true h.Journal.jh_prune;
      Journal.check h ~circuit:(N.name c) (cfg true);
      (match Journal.contiguous ~first:0 indexed with
      | [ Journal.Verdict v ] ->
          checkb "pruned flag round-trips" true v.Campaign.vd_pruned;
          checkb "outcome round-trips" true
            (v.Campaign.vd_outcome
            = (List.hd t.Campaign.cam_verdicts).Campaign.vd_outcome)
      | l -> Alcotest.failf "expected one verdict entry, got %d" (List.length l));
      match Journal.check h ~circuit:(N.name c) (cfg false) with
      | () -> Alcotest.fail "prune-mode mismatch must be rejected"
      | exception Halotis_guard.Diag.Fail d ->
          Alcotest.(check string)
            "diag code" "journal-mismatch" d.Halotis_guard.Diag.code)

(* --- incremental cone re-simulation --- *)

module Compiled = Halotis_engine.Compiled

(* Structural invariants of the static fanout cone: the victim and
   every member gate's output are members, membership is closed under
   fanout (the property that makes a cone run escape-proof), and the
   boundary feeds are exactly the member-gate pins driven from
   outside. *)
let test_fanout_cone_structure () =
  let c, _ = Test_perf_equiv.workload ~gates:30 ~seed:17 in
  let cp = Compiled.compile DL.tech c in
  List.iter
    (fun victim ->
      let cone = Compiled.fanout_cone cp ~victim in
      let member sid = Bytes.get cone.Compiled.cone_signal_member sid = '\001' in
      checkb "victim is a member" true (member victim);
      checkb "victim listed" true (Array.mem victim cone.Compiled.cone_signals);
      Array.iter
        (fun g -> checkb "gate output is a member" true (member cp.Compiled.g_out.(g)))
        cone.Compiled.cone_gates;
      Array.iter
        (fun sid ->
          checkb "member flag consistent" true (member sid);
          for e = cp.Compiled.fan_off.(sid) to cp.Compiled.fan_off.(sid + 1) - 1 do
            checkb "fanout closure" true
              (Array.mem cp.Compiled.fan_gate.(e) cone.Compiled.cone_gates)
          done)
        cone.Compiled.cone_signals;
      checki "boundary arrays parallel"
        (Array.length cone.Compiled.cone_bnd_gate)
        (Array.length cone.Compiled.cone_bnd_pin);
      Array.iteri
        (fun k g ->
          let pin = cone.Compiled.cone_bnd_pin.(k) in
          let sid = cp.Compiled.pin_fanin.(cp.Compiled.g_base.(g) + pin) in
          checkb "boundary gate is a member" true
            (Array.mem g cone.Compiled.cone_gates);
          checkb "boundary feed comes from outside" true (not (member sid)))
        cone.Compiled.cone_bnd_gate)
    (List.filteri (fun i _ -> i mod 7 = 0) (Site.candidates c))

(* Direct graft check: an [Exact] cone outcome must reproduce the full
   injected run's digitized edges and counters exactly — the identity
   the whole optimization rests on. *)
let test_cone_exact_matches_full () =
  let c, drives = Test_perf_equiv.workload ~gates:30 ~seed:42 in
  let spec = Sim.spec ~drives ~t_stop:12_000. ~tech:DL.tech c in
  let base = Sim.run Sim.Ddm spec in
  let ctx =
    match Sim.Cone.create Sim.Ddm spec ~baseline:base with
    | Some ctx -> ctx
    | None -> Alcotest.fail "cone context refused a completed baseline"
  in
  let baseline = match Sim.iddm base with Some r -> r | None -> assert false in
  let exact = ref 0 in
  List.iteri
    (fun i victim ->
      let site = Site.of_signal ~baseline victim ~at:(3000. +. (137. *. float_of_int i)) in
      let inj = Inject.injection site (Inject.pulse ~width:150. ()) in
      match Sim.Cone.run_site ctx inj with
      | Sim.Cone.Fallback _ -> ()
      | Sim.Cone.Exact { edges; stats; _ } ->
          incr exact;
          let full = Sim.run Sim.Ddm { spec with Sim.sp_injections = [ inj ] } in
          let full_edges = Sim.edges full in
          Array.iteri
            (fun sid es -> checkb "edges identical" true (es = full_edges.(sid)))
            edges;
          checkb "stats identical" true
            (stats = Halotis_engine.Stats.copy full.Sim.rs_stats))
    (Site.candidates c);
  checkb "at least one exact site (non-vacuous)" true (!exact > 0);
  let tot = Sim.Cone.totals ctx in
  checki "totals count the exact sites" !exact tot.Sim.Cone.ct_exact

(* Primary inputs have no driver gate and their baseline waveform
   carries the drive itself — the cone path must refuse, not graft. *)
let test_cone_pi_victim_falls_back () =
  let c = Lazy.force chain in
  let drives = [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  let spec = Sim.spec ~drives ~t_stop:8000. ~tech:DL.tech c in
  let base = Sim.run Sim.Ddm spec in
  let ctx =
    match Sim.Cone.create Sim.Ddm spec ~baseline:base with
    | Some ctx -> ctx
    | None -> Alcotest.fail "cone context refused a completed baseline"
  in
  match
    Sim.Cone.run_site ctx
      {
        Sim.inj_signal = sid c "in";
        inj_ramps =
          Inject.transitions ~at:2000. ~polarity:T.Rising (Inject.pulse ~width:150. ());
      }
  with
  | Sim.Cone.Fallback _ -> ()
  | Sim.Cone.Exact _ -> Alcotest.fail "primary-input victim must fall back"

(* Headline equivalence property: incremental and full campaigns agree
   byte-for-byte — reports and journal files — across random circuits,
   seeds and both waveform engines. *)
let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incremental cone campaign == full re-simulation" ~count:8
    QCheck.(pair (int_range 10 35) (int_range 0 1000))
    (fun (gates, seed) ->
      let c, drives = Test_perf_equiv.workload ~gates ~seed in
      let engine = if seed land 1 = 0 then Campaign.Ddm else Campaign.Cdm in
      let cfg incremental =
        Campaign.config ~engine ~seed:(seed + 11) ~n:12 ~incremental ~t_stop:12_000. ()
      in
      let campaign_and_journal cfg =
        let path = Filename.temp_file "halotis_cone_test" ".journal" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let w =
              Journal.open_new path (Journal.header_of ~circuit:(N.name c) cfg)
            in
            let t =
              Campaign.run
                ~on_verdict:(fun i v -> Journal.write w i v)
                cfg DL.tech c ~drives
            in
            Journal.close w;
            let ic = open_in_bin path in
            let bytes =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            (t, bytes))
      in
      let t_on, j_on = campaign_and_journal (cfg true) in
      let t_off, j_off = campaign_and_journal (cfg false) in
      Fault_report.to_string t_on = Fault_report.to_string t_off
      && Fault_report.to_text t_on = Fault_report.to_text t_off
      && j_on = j_off
      && t_off.Campaign.cam_cone = None
      && match t_on.Campaign.cam_cone with
         | None -> false
         | Some tot ->
             tot.Sim.Cone.ct_exact + tot.Sim.Cone.ct_fallback
             = List.length t_on.Campaign.cam_verdicts)

(* Deliberate coincidence fixture: strike the victim at the exact
   instant a boundary-feed event fires inside its cone.  The injected
   cone run pops two same-instant events — the splice and a replayed
   pin event — whose order the queue's intrinsic ranks fix identically
   in cone and full runs (splice first), so the graft must stay exact
   and the report byte-identical to incremental-off.  This is the
   regression test for the rank-based tie-break: under history-derived
   (FIFO) tie-breaking this very fixture diverges. *)
let test_cone_same_instant_strike_exact () =
  let c = Lazy.force chain in
  let input = sid c "in" in
  let drives = [ (input, Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  let baseline = Iddm.run (Iddm.config ~t_stop:8000. DL.tech) c ~drives in
  let victim = sid c "out2" in
  (* out2's driver gate is fed by out1 — a boundary signal of out2's
     cone.  Its replayed event fires when out1 crosses that pin's
     threshold; strike at exactly that instant. *)
  let cp = Compiled.compile DL.tech c in
  let driver =
    match (N.signal c victim).N.driver with Some g -> g | None -> assert false
  in
  let slot = cp.Compiled.g_base.(driver) in
  let at =
    W.last_crossing baseline.Iddm.waveforms.(cp.Compiled.pin_fanin.(slot))
      ~vt:cp.Compiled.pin_vt.(slot)
  in
  checkb "fixture has a boundary crossing" true (not (Float.is_nan at));
  let site = Site.of_signal ~baseline victim ~at in
  let cfg incremental = Campaign.config ~incremental ~t_stop:8000. () in
  let with_site cfg = { cfg with Campaign.sites = Some [ site ] } in
  let t_on = Campaign.run (with_site (cfg true)) DL.tech c ~drives in
  let t_off = Campaign.run (with_site (cfg false)) DL.tech c ~drives in
  (match t_on.Campaign.cam_cone with
  | None -> Alcotest.fail "incremental was refused outright"
  | Some tot -> checki "site grafted exactly" 1 tot.Sim.Cone.ct_exact);
  Alcotest.(check string) "report byte-identical" (Fault_report.to_string t_off)
    (Fault_report.to_string t_on)

let test_engine_of_string () =
  checkb "ddm" true (Campaign.engine_of_string "ddm" = Some Campaign.Ddm);
  checkb "cdm" true (Campaign.engine_of_string "cdm" = Some Campaign.Cdm);
  checkb "classic" true
    (Campaign.engine_of_string "classic" = Some Campaign.Classic_inertial);
  checkb "unknown" true (Campaign.engine_of_string "spice" = None)

let tests =
  [
    ( "fault.inject",
      [
        Alcotest.test_case "pulse validation" `Quick test_pulse_validation;
        Alcotest.test_case "pulse transitions" `Quick test_pulse_transitions;
      ] );
    ( "fault.site",
      [
        Alcotest.test_case "candidates" `Quick test_site_candidates;
        Alcotest.test_case "polarity from baseline" `Quick test_site_polarity;
        Alcotest.test_case "sample determinism" `Quick test_site_sample_deterministic;
      ] );
    ( "fault.campaign",
      [
        QCheck_alcotest.to_alcotest prop_wide_pulse_propagates;
        QCheck_alcotest.to_alcotest prop_runt_never_propagates;
        Alcotest.test_case "fig1 threshold split" `Quick test_fig1_split;
        Alcotest.test_case "reports reproducible" `Quick test_campaign_reports_reproducible;
        Alcotest.test_case "counts consistent" `Quick test_campaign_counts_consistent;
        Alcotest.test_case "classic strike not preempted" `Quick
          test_classic_strike_not_preempted;
        Alcotest.test_case "engine names" `Quick test_engine_of_string;
      ] );
    ( "fault.prune",
      [
        QCheck_alcotest.to_alcotest prop_prune_sound;
        Alcotest.test_case "proven site skipped" `Quick test_prune_skips_proven_site;
        Alcotest.test_case "journal v2 round-trip" `Quick
          test_journal_v2_pruned_roundtrip;
      ] );
    ( "fault.cone",
      [
        Alcotest.test_case "fanout cone structure" `Quick test_fanout_cone_structure;
        Alcotest.test_case "exact graft matches full run" `Quick
          test_cone_exact_matches_full;
        Alcotest.test_case "primary-input victim falls back" `Quick
          test_cone_pi_victim_falls_back;
        QCheck_alcotest.to_alcotest prop_incremental_equals_full;
        Alcotest.test_case "same-instant strike stays exact" `Quick
          test_cone_same_instant_strike_exact;
      ] );
  ]
