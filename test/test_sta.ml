(* Tests for Halotis_sta: arrival computation, critical paths and the
   conservatism property against the event-driven engine. *)

module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module G = Halotis_netlist.Generators
module Sta = Halotis_sta.Sta
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module D = Halotis_wave.Digital
module DM = Halotis_delay.Delay_model
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let sid c n = match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no %s" n

let test_chain_arrival_accumulates () =
  let c = G.inverter_chain ~n:4 () in
  let t = Sta.analyze DL.tech c in
  let arrivals =
    List.map
      (fun n ->
        let a = Sta.arrival t (sid c n) in
        Float.max a.Sta.rise_at a.Sta.fall_at)
      [ "out1"; "out2"; "out3"; "out" ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "monotone along the chain" true (increasing arrivals);
  checkb "worst is the last stage" true
    (Float.abs (Sta.worst t -. List.nth arrivals 3) < 1e-9)

let test_input_arrival_offset () =
  let c = G.inverter_chain ~n:2 () in
  let t0 = Sta.analyze DL.tech c in
  let t5 = Sta.analyze ~input_arrival:5000. DL.tech c in
  Alcotest.(check (float 1e-6)) "pure shift" (Sta.worst t0 +. 5000.) (Sta.worst t5)

let test_worst_output () =
  let c = G.inverter_chain ~n:3 () in
  let t = Sta.analyze DL.tech c in
  (match Sta.worst_output t with
  | Some s -> Alcotest.(check string) "out" "out" (N.signal_name c s)
  | None -> Alcotest.fail "expected a worst output");
  checkb "positive" true (Sta.worst t > 0.)

let test_critical_path_chain () =
  let c = G.inverter_chain ~n:4 () in
  let t = Sta.analyze DL.tech c in
  let path = Sta.critical_path t in
  checki "four hops" 4 (List.length path);
  (* polarities alternate along an inverter chain *)
  let rec alternating = function
    | (a : Sta.path_step) :: (b :: _ as rest) ->
        a.Sta.step_rising <> b.Sta.step_rising && alternating rest
    | [ _ ] | [] -> true
  in
  checkb "alternating" true (alternating path);
  (* arrivals increase along the path *)
  let rec increasing = function
    | (a : Sta.path_step) :: (b :: _ as rest) ->
        a.Sta.step_at < b.Sta.step_at && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "increasing" true (increasing path);
  checkb "pp renders" true
    (String.length (Format.asprintf "%a" (Sta.pp_path c) path) > 20)

let cyclic_circuit () =
  let b = Builder.create "cyc" in
  let a = Builder.input b "a" in
  let x = Builder.signal b "x" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g1" ~inputs:[ a; y ] ~output:x in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ x ] ~output:y in
  Builder.mark_output b x;
  Builder.finalize b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Cyclic circuits used to die with a bare [Invalid_argument]; static
   analyses now raise the structured diagnostic with a cycle witness. *)
let test_cyclic_rejected () =
  let c = cyclic_circuit () in
  let expect_diag what f =
    match f () with
    | _ -> Alcotest.failf "%s accepted a cyclic circuit" what
    | exception Halotis_guard.Diag.Fail d ->
        Alcotest.(check string) (what ^ " code") "cyclic-circuit" d.Halotis_guard.Diag.code;
        checkb (what ^ " witness names a cycle gate") true
          (contains d.Halotis_guard.Diag.message "g1"
          || contains d.Halotis_guard.Diag.message "g2");
        checkb (what ^ " has a hint") true (d.Halotis_guard.Diag.hint <> None)
  in
  expect_diag "Sta.analyze" (fun () -> ignore (Sta.analyze DL.tech c));
  expect_diag "Hazard.analyze" (fun () ->
      ignore (Halotis_sta.Hazard.analyze DL.tech c))

let test_constant_cone_never_switches () =
  (* a gate fed only by constants has no arrival; worst is 0 *)
  let b = Builder.create "const" in
  let zero = Builder.const b Halotis_logic.Value.L0 in
  let one = Builder.const b Halotis_logic.Value.L1 in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g" ~inputs:[ zero; one ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let t = Sta.analyze DL.tech c in
  Alcotest.(check (float 0.)) "no activity" 0. (Sta.worst t);
  checki "empty path" 0 (List.length (Sta.critical_path t))

let test_unate_polarities () =
  (* through one inverter, a rising output can only come from a falling
     input: its rise_at uses the input fall arrival *)
  let c = G.inverter_chain ~n:1 () in
  let t = Sta.analyze DL.tech c in
  let a = Sta.arrival t (sid c "out") in
  checkb "both polarities reachable" true
    (a.Sta.rise_at > 0. && a.Sta.fall_at > 0.);
  (* falling output of an inverter is the faster edge in the library *)
  checkb "fall earlier than rise" true (a.Sta.fall_at < a.Sta.rise_at)

let test_multiplier_depth_correlates () =
  let shallow = G.array_multiplier ~m:2 ~n:2 () in
  let deep = G.array_multiplier ~m:4 ~n:4 () in
  let w c = Sta.worst (Sta.analyze DL.tech c) in
  checkb "4x4 slower than 2x2" true
    (w deep.G.mult_circuit > w shallow.G.mult_circuit)

(* Conservatism: for random circuits and random vectors, every CDM-mode
   simulated edge lands at or before the STA arrival of its signal. *)
let prop_sta_bounds_simulation =
  QCheck.Test.make ~name:"STA arrival bounds every simulated edge (CDM)" ~count:20
    QCheck.(pair (int_range 5 60) (int_range 2 5))
    (fun (gates, inputs) ->
      let c = G.random_combinational ~gates ~inputs ~seed:(gates + (31 * inputs)) () in
      let t = Sta.analyze ~input_arrival:0. ~input_slope:100. DL.tech c in
      let rng = Halotis_util.Prng.create ~seed:gates in
      let drives =
        List.map
          (fun s ->
            (* initial level random; all switching at t = 0 *)
            ( s,
              Drive.of_levels ~slope:100. ~initial:(Halotis_util.Prng.bool rng)
                [ (0., Halotis_util.Prng.bool rng) ] ))
          (N.primary_inputs c)
      in
      let r = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
      Array.for_all
        (fun (s : N.signal) ->
          let a = Sta.arrival t s.N.signal_id in
          let bound = Float.max a.Sta.rise_at a.Sta.fall_at in
          List.for_all
            (fun (e : D.edge) -> e.D.at <= bound +. 1e-6)
            (D.edges r.Iddm.waveforms.(s.N.signal_id) ~vt:2.5))
        (N.signals c))

(* --- hazard analysis --- *)

module Hazard = Halotis_sta.Hazard

let test_hazard_windows_chain () =
  (* single-input gates never collide: no sites in a chain *)
  let c = G.inverter_chain ~n:4 () in
  let h = Hazard.analyze DL.tech c in
  checki "no sites" 0 (List.length (Hazard.sites h));
  (match Hazard.window h (sid c "out") with
  | Some w -> checkb "window ordered" true (w.Hazard.earliest < w.Hazard.latest)
  | None -> Alcotest.fail "expected a window");
  checkb "deeper signals later" true
    ((match Hazard.window h (sid c "out") with Some w -> w.Hazard.earliest | None -> 0.)
    > (match Hazard.window h (sid c "out1") with Some w -> w.Hazard.earliest | None -> 0.))

let test_hazard_balanced_nand () =
  (* two inputs arriving over overlapping windows: flagged *)
  let b = Builder.create "bal" in
  let a = Builder.input b "a" in
  let x = Builder.input b "x" in
  let y = Builder.signal b "y" in
  let gid = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; x ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let h = Hazard.analyze DL.tech c in
  checkb "flagged" true (Hazard.is_hazardous h gid);
  checki "one site" 1 (List.length (Hazard.sites h));
  checki "it is a timing site" 1 (List.length (Hazard.timing_sites h));
  checkb "pp renders" true
    (String.length (Format.asprintf "%a" (Hazard.pp_sites c) (Hazard.sites h)) > 5)

let test_hazard_constant_input_not_flagged () =
  (* a gate with one switching input and one tie cell cannot collide *)
  let b = Builder.create "tie" in
  let a = Builder.input b "a" in
  let one = Builder.const b Halotis_logic.Value.L1 in
  let y = Builder.signal b "y" in
  let gid = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; one ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let h = Hazard.analyze DL.tech c in
  checkb "not flagged" false (Hazard.is_hazardous h gid)

let test_hazard_multiplier_sites () =
  (* the array multiplier is full of reconvergence: many sites, and
     they include XOR cells of the adders *)
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let h = Hazard.analyze DL.tech m.G.mult_circuit in
  checkb "many sites" true (List.length (Hazard.sites h) > 20);
  checkb "timing sites exist" true (List.length (Hazard.timing_sites h) > 0);
  (* timing sites sorted by decreasing overlap *)
  let rec sorted = function
    | (a : Hazard.site) :: (b :: _ as rest) ->
        a.Hazard.hz_window_overlap >= b.Hazard.hz_window_overlap && sorted rest
    | [ _ ] | [] -> true
  in
  checkb "sorted" true (sorted (Hazard.timing_sites h))

(* Conservatism: any gate that *generates* a glitch in simulation
   (output pulses while each input shows at most one edge) must be a
   flagged site. *)
let prop_hazard_covers_generated_glitches =
  QCheck.Test.make ~name:"flagged sites cover generated glitches" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let m = G.array_multiplier ~m:4 ~n:4 () in
      let c = m.G.mult_circuit in
      let h = Hazard.analyze DL.tech c in
      let rng = Halotis_util.Prng.create ~seed in
      let bits v i = (v lsr i) land 1 = 1 in
      let v1 = Halotis_util.Prng.int rng ~bound:256 in
      let v2 = Halotis_util.Prng.int rng ~bound:256 in
      let drives =
        List.mapi
          (fun i s ->
            (s, Drive.of_levels ~slope:100. ~initial:(bits v1 i) [ (0., bits v2 i) ]))
          (N.primary_inputs c)
      in
      let r = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
      Array.for_all
        (fun (g : N.gate) ->
          let out_pulses =
            List.length (D.pulses r.Iddm.waveforms.(g.N.output) ~vt:2.5)
          in
          if out_pulses = 0 then true
          else begin
            let inputs_monotone =
              Array.for_all
                (fun fid -> D.edge_count r.Iddm.waveforms.(fid) ~vt:2.5 <= 1)
                g.N.fanin
            in
            (not inputs_monotone) || Hazard.is_hazardous h g.N.gate_id
          end)
        (N.gates c))

(* Hazard soundness against the committed paper fixture: every digital
   edge the CDM engine produces under mult4x4.hsv lies inside some
   input-change instant's arrival-uncertainty window.  Paths anchor on
   the test binary, like test_cli.ml, so they resolve under both `dune
   runtest` and `dune exec`. *)
let data f =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "..")
    (Filename.concat "examples" (Filename.concat "data" f))

let test_hazard_soundness_mult4x4_fixture () =
  let c =
    match Halotis_netlist.Hnl.parse_file (data "mult4x4.hnl") with
    | Ok c -> c
    | Error e -> Alcotest.failf "mult4x4.hnl: %s" e.Halotis_netlist.Hnl.message
  in
  let stim =
    match Halotis_stim.Stimfile.parse_file (data "mult4x4.hsv") with
    | Ok s -> s
    | Error e -> Alcotest.failf "mult4x4.hsv: %s" e.Halotis_stim.Stimfile.message
  in
  let drives =
    match Halotis_stim.Stimfile.bind stim c with
    | Ok d -> d
    | Error m -> Alcotest.fail m
  in
  let h = Hazard.analyze ~input_slope:stim.Halotis_stim.Stimfile.slope DL.tech c in
  let instants =
    List.sort_uniq compare
      (0.
      :: List.concat_map
           (fun (_, changes) -> List.map fst changes)
           stim.Halotis_stim.Stimfile.raw_changes)
  in
  let r = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
  let checked = ref 0 in
  Array.iter
    (fun (s : N.signal) ->
      let edges = D.edges r.Iddm.waveforms.(s.N.signal_id) ~vt:2.5 in
      match Hazard.window h s.N.signal_id with
      | None ->
          checki (N.signal_name c s.N.signal_id ^ " cannot switch") 0
            (List.length edges)
      | Some w ->
          List.iter
            (fun (e : D.edge) ->
              incr checked;
              checkb
                (Printf.sprintf "%s edge at %.1f inside a window"
                   (N.signal_name c s.N.signal_id) e.D.at)
                true
                (List.exists
                   (fun t0 ->
                     e.D.at >= t0 +. w.Hazard.earliest -. 1e-6
                     && e.D.at <= t0 +. w.Hazard.latest +. 1e-6)
                   instants))
            edges)
    (N.signals c);
  checkb "fixture actually produced edges" true (!checked > 50)

(* --- SET survival analysis --- *)

module Survival = Halotis_sta.Survival

let test_survival_chain_map () =
  let c = G.inverter_chain ~n:4 () in
  let an = Survival.analyze DL.tech c in
  Alcotest.(check (float 0.)) "canonical width" 150. (Survival.width an);
  checkb "chain has candidates" true (Survival.candidates an <> []);
  checkb "no degenerate verdict" false (Survival.all_sites_filtered an);
  Array.iter
    (fun (g : N.gate) ->
      match Survival.gate_attenuation an g.N.gate_id with
      | Some _ -> ()
      | None ->
          Alcotest.failf "%s filters the canonical pulse outright"
            (N.gate_name c g.N.gate_id))
    (N.gates c);
  (* every candidate survives to the single output at some width, and
     the weakest-surviving summary agrees with the per-site bound *)
  (match Survival.weakest_surviving an with
  | [ (po, w) ] ->
      Alcotest.(check string) "one output" "out" (N.signal_name c po);
      checkb "weakest width is feasible" true (Float.is_finite w && w > 0.);
      checkb "weakest is the min over sites" true
        (List.exists
           (fun sid ->
             Float.min
               (Survival.surviving_width an sid ~rising:true)
               (Survival.surviving_width an sid ~rising:false)
             = w)
           (Survival.candidates an))
  | l -> Alcotest.failf "expected one output, got %d" (List.length l));
  (* deeper sites need wider pulses: more gates left to attenuate *)
  let min_w name =
    let sid = sid c name in
    Float.min
      (Survival.surviving_width an sid ~rising:true)
      (Survival.surviving_width an sid ~rising:false)
  in
  checkb "first stage needs the widest pulse" true (min_w "out1" >= min_w "out3")

let test_survival_constant_site_excluded () =
  let b = Builder.create "tie" in
  let a = Builder.input b "a" in
  let zero = Builder.const b Halotis_logic.Value.L0 in
  let x = Builder.signal b "x" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g1" ~inputs:[ a; zero ] ~output:x in
  let _ = Builder.add_gate b (Gate_kind.Or 2) ~name:"g2" ~inputs:[ x; a ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let an = Survival.analyze DL.tech c in
  (* x is forced low by the tie: its driver is flagged blocked in the
     vulnerability map *)
  let module J = Halotis_util.Json in
  let blocked_of name =
    match J.member "gates" (Survival.to_json an) with
    | Some (J.Arr gates) ->
        List.find_map
          (fun g ->
            match (J.member "gate" g, J.member "blocked" g) with
            | Some (J.Str n), Some (J.Bool b) when n = name -> Some b
            | _ -> None)
          gates
    | _ -> None
  in
  Alcotest.(check (option bool)) "g1 blocked" (Some true) (blocked_of "g1");
  Alcotest.(check (option bool)) "g2 live" (Some false) (blocked_of "g2");
  checkb "live path keeps the circuit non-degenerate" false
    (Survival.all_sites_filtered an)

let test_survival_cyclic_rejected () =
  match Survival.analyze DL.tech (cyclic_circuit ()) with
  | _ -> Alcotest.fail "accepted a cyclic circuit"
  | exception Halotis_guard.Diag.Fail d ->
      Alcotest.(check string) "code" "cyclic-circuit" d.Halotis_guard.Diag.code

let test_survival_json_shape () =
  let c = G.inverter_chain ~n:3 () in
  let an = Survival.analyze DL.tech c in
  let j = Survival.to_json an in
  let member n =
    match Halotis_util.Json.member n j with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" n
  in
  (match member "tool" with
  | Halotis_util.Json.Str s -> Alcotest.(check string) "tool" "halotis-survival" s
  | _ -> Alcotest.fail "tool is not a string");
  checki "three gates" 3 (List.length (Halotis_util.Json.to_list (member "gates")));
  checki "one output" 1 (List.length (Halotis_util.Json.to_list (member "outputs")));
  checkb "text rendering mentions the output" true
    (contains (Format.asprintf "%a" Survival.pp_text an) "out")

let tests =
  [
    ( "sta.hazard",
      [
        Alcotest.test_case "chain has no sites" `Quick test_hazard_windows_chain;
        Alcotest.test_case "balanced nand flagged" `Quick test_hazard_balanced_nand;
        Alcotest.test_case "constant input" `Quick test_hazard_constant_input_not_flagged;
        Alcotest.test_case "multiplier sites" `Quick test_hazard_multiplier_sites;
        Alcotest.test_case "mult4x4.hsv soundness" `Quick
          test_hazard_soundness_mult4x4_fixture;
        QCheck_alcotest.to_alcotest prop_hazard_covers_generated_glitches;
      ] );
    ( "sta.survival",
      [
        Alcotest.test_case "chain map" `Quick test_survival_chain_map;
        Alcotest.test_case "blocked gate" `Quick test_survival_constant_site_excluded;
        Alcotest.test_case "cyclic rejected" `Quick test_survival_cyclic_rejected;
        Alcotest.test_case "json shape" `Quick test_survival_json_shape;
      ] );
    ( "sta",
      [
        Alcotest.test_case "chain accumulates" `Quick test_chain_arrival_accumulates;
        Alcotest.test_case "input arrival offset" `Quick test_input_arrival_offset;
        Alcotest.test_case "worst output" `Quick test_worst_output;
        Alcotest.test_case "critical path" `Quick test_critical_path_chain;
        Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
        Alcotest.test_case "constant cone" `Quick test_constant_cone_never_switches;
        Alcotest.test_case "unate polarities" `Quick test_unate_polarities;
        Alcotest.test_case "depth correlates" `Quick test_multiplier_depth_correlates;
        QCheck_alcotest.to_alcotest prop_sta_bounds_simulation;
      ] );
  ]

let test_slack () =
  let c = G.inverter_chain ~n:3 () in
  let t = Sta.analyze DL.tech c in
  let worst = Sta.worst t in
  Alcotest.(check (float 1e-9)) "min period" worst (Sta.min_period t);
  (match Sta.slack t ~period:(worst +. 100.) with
  | [ (_, sl) ] -> Alcotest.(check (float 1e-6)) "positive slack" 100. sl
  | _ -> Alcotest.fail "one output expected");
  match Sta.slack t ~period:(worst -. 50.) with
  | [ (_, sl) ] -> checkb "violated" true (sl < 0.)
  | _ -> Alcotest.fail "one output expected"

let tests =
  tests @ [ ("sta.slack", [ Alcotest.test_case "slack" `Quick test_slack ]) ]
