(* The Monte-Carlo variation & aging workload: hierarchical corner
   sampling, the aging law, TTF sweeps, and the vary report.

   The load-bearing property is the bit-identity ladder: a zero-sigma,
   zero-stress vary sample is the empty overlay, the empty overlay
   reproduces the plain faults campaign byte-for-byte (reports AND
   journals), and a fixed seed reproduces the whole distribution —
   serial or sharded across workers. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Drive = Halotis_engine.Drive
module Sim = Halotis_engine.Sim
module Checkpoint = Halotis_engine.Checkpoint
module Compiled = Halotis_engine.Compiled
module DL = Halotis_tech.Default_lib
module Overlay = Halotis_tech.Param_overlay
module Campaign = Halotis_fault.Campaign
module Journal = Halotis_fault.Journal
module Fault_report = Halotis_fault.Fault_report
module Circuit_cache = Halotis_serve.Circuit_cache
module Sampler = Halotis_vary.Sampler
module Aging = Halotis_vary.Aging
module Sweep = Halotis_vary.Sweep
module Vary_report = Halotis_vary.Vary_report

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let sid c n =
  match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no signal %s" n

let chain = lazy (G.inverter_chain ~n:4 ())

(* ------------------------------------------------------------------ *)
(* Sampler                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampler_zero_sigma_empty () =
  let c = Lazy.force chain in
  checkb "zero sigma, zero stress is the empty overlay" true
    (Overlay.is_empty (Sampler.sample Sampler.zero ~seed:3 ~index:0 c));
  (* zero sigma with stress degenerates to the pure aging overlay *)
  let aged = Sampler.sample ~stress_hours:5000. Sampler.zero ~seed:3 ~index:0 c in
  checkb "zero sigma with stress is Aging.overlay" true
    (Overlay.equal aged (Aging.overlay ~stress_hours:5000. ~gates:(N.gate_count c)))

let test_sampler_validation () =
  let c = Lazy.force chain in
  checkb "negative index raises" true
    (try
       ignore (Sampler.sample Sampler.zero ~seed:1 ~index:(-1) c);
       false
     with Invalid_argument _ -> true);
  checkb "negative sigma raises" true
    (try
       ignore (Sampler.sigmas ~device:(-0.1) ());
       false
     with Invalid_argument _ -> true)

let prop_sampler_deterministic =
  (* same (seed, index) must rebuild the identical corner — across
     calls, which stands in for across processes (the CLI workers
     resample rather than serialize overlays) *)
  QCheck.Test.make ~name:"sampler is a pure function of (seed, index)" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 63))
    (fun (seed, index) ->
      let c = Lazy.force chain in
      let sg = Sampler.sigmas ~device:0.1 ~chip:0.05 ~lot:0.02 () in
      let a = Sampler.sample sg ~seed ~index c in
      let b = Sampler.sample sg ~seed ~index c in
      Overlay.equal a b && Overlay.fingerprint a = Overlay.fingerprint b)

let test_sampler_distinct_corners () =
  let c = Lazy.force chain in
  let sg = Sampler.sigmas ~device:0.1 () in
  let fp i = Overlay.fingerprint (Sampler.sample sg ~seed:7 ~index:i c) in
  checkb "different samples land on different corners" true (fp 0 <> fp 1);
  let fp' i = Overlay.fingerprint (Sampler.sample sg ~seed:8 ~index:i c) in
  checkb "different seeds land on different corners" true (fp 0 <> fp' 0)

let test_sampler_covers_all_gates () =
  let c = Lazy.force chain in
  let sg = Sampler.sigmas ~device:0.1 () in
  checki "every gate gets a corner" (N.gate_count c)
    (Overlay.cardinal (Sampler.sample sg ~seed:7 ~index:0 c))

(* ------------------------------------------------------------------ *)
(* Aging                                                              *)
(* ------------------------------------------------------------------ *)

let test_aging_identity_at_zero () =
  checkb "scale is exactly 1.0" true (Aging.scale ~stress_hours:0. = 1.0);
  checkb "vt_scale is exactly 1.0" true (Aging.vt_scale ~stress_hours:0. = 1.0);
  checkb "overlay is exactly empty" true
    (Overlay.is_empty (Aging.overlay ~stress_hours:0. ~gates:5));
  checkb "age_scale is the physical identity" true
    (Overlay.scale_is_identity (Aging.age_scale ~stress_hours:0. Overlay.scale_identity))

let test_aging_shifts () =
  let s = Aging.age_scale ~stress_hours:10000. Overlay.scale_identity in
  checkb "ddm window shrinks" true (s.Overlay.sc_ddm_a < 1.0);
  checkb "ddm_b shrinks identically" true (s.Overlay.sc_ddm_b = s.Overlay.sc_ddm_a);
  checkb "ddm_c untouched" true (s.Overlay.sc_ddm_c = 1.0);
  checkb "conventional delay slows" true (s.Overlay.sc_d0 > 1.0);
  (* the asymmetry that makes TTF sweeps converge: the window decays an
     order of magnitude faster than the gate slows *)
  checkb "window decay dominates slowdown" true
    (1.0 /. s.Overlay.sc_ddm_a -. 1.0 > 5.0 *. (s.Overlay.sc_d0 -. 1.0));
  checkb "threshold drifts toward ground" true (Aging.vt_scale ~stress_hours:10000. < 1.0);
  checkb "scale is monotone in stress" true
    (Aging.scale ~stress_hours:1000. < Aging.scale ~stress_hours:2000.)

(* ------------------------------------------------------------------ *)
(* Sweep                                                              *)
(* ------------------------------------------------------------------ *)

let test_sweep_brackets_threshold () =
  (* A monotone synthetic probe: fails at 1234 h and beyond.  The sweep
     must bracket and refine the boundary from above. *)
  let t = Sweep.run ~probe:(fun ~stress_hours -> stress_hours >= 1234.) () in
  match t.Sweep.sw_ttf with
  | None -> Alcotest.fail "sweep missed the threshold"
  | Some ttf ->
      checkb "ttf is a failing age" true (ttf >= 1234.);
      checkb "refinement tightened the first ladder bracket" true (ttf < 1600.);
      checkb "a surviving probe below the ttf was recorded" true
        (List.exists (fun s -> (not s.Sweep.sw_failed) && s.Sweep.sw_hours < ttf) t.Sweep.sw_steps);
      checkb "steps agree with the probe" true
        (List.for_all (fun s -> s.Sweep.sw_failed = (s.Sweep.sw_hours >= 1234.)) t.Sweep.sw_steps)

let test_sweep_never_fails () =
  let t = Sweep.run ~max_steps:6 ~probe:(fun ~stress_hours:_ -> false) () in
  checkb "no ttf when nothing fails" true (t.Sweep.sw_ttf = None);
  checki "ladder exhausted" 6 (List.length t.Sweep.sw_steps)

let test_sweep_deterministic () =
  let probe ~stress_hours = stress_hours >= 777. in
  let a = Sweep.run ~probe () and b = Sweep.run ~probe () in
  checkb "identical trajectories" true (a = b)

(* ------------------------------------------------------------------ *)
(* Bit-identity: zero-sigma vary sample == plain faults campaign      *)
(* ------------------------------------------------------------------ *)

let journal_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_with_journal cfg c ~drives =
  let path = Filename.temp_file "halotis-test-vary" ".journal" in
  let w = Journal.open_new path (Journal.header_of ~circuit:(N.name c) cfg) in
  let t = Campaign.run ~on_verdict:(fun i v -> Journal.write w i v) cfg DL.tech c ~drives in
  Journal.close w;
  let bytes = journal_bytes path in
  Sys.remove path;
  (t, bytes)

let test_zero_sigma_bit_identity engine () =
  let c = Lazy.force chain in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let cfg = Campaign.config ~engine ~seed:5 ~n:10 ~t_stop:8000. () in
  let overlay = Sampler.sample Sampler.zero ~seed:5 ~index:0 c in
  let plain, plain_j = run_with_journal cfg c ~drives in
  let vary, vary_j = run_with_journal { cfg with Campaign.overlay } c ~drives in
  checks "reports byte-identical (machine)" (Fault_report.to_string plain)
    (Fault_report.to_string vary);
  checks "reports byte-identical (text)" (Fault_report.to_text plain)
    (Fault_report.to_text vary);
  checks "journals byte-identical" plain_j vary_j

let test_vary_report_deterministic () =
  (* Fixed seed, real spread: the whole distribution report must
     reproduce byte-for-byte. *)
  let c = Lazy.force chain in
  let drives = [ (sid c "in", Drive.constant false) ] in
  let cfg = Campaign.config ~engine:Campaign.Ddm ~seed:11 ~n:8 ~t_stop:8000. () in
  let build () =
    let nominal = Campaign.run cfg DL.tech c ~drives in
    let sites = List.map (fun v -> v.Campaign.vd_site) nominal.Campaign.cam_verdicts in
    let sg = Sampler.sigmas ~device:0.2 ~chip:0.05 () in
    let samples =
      List.map
        (fun k ->
          let overlay = Sampler.sample sg ~seed:11 ~index:k c in
          let t =
            Campaign.run
              { cfg with Campaign.overlay; sites = Some sites }
              DL.tech c ~drives
          in
          (k, Overlay.fingerprint overlay, t.Campaign.cam_verdicts))
        [ 0; 1; 2 ]
    in
    Vary_report.make ~circuit:(N.name c) ~engine:"ddm" ~seed:11 ~sigmas:sg
      ~stress_hours:0. ~nominal:nominal.Campaign.cam_verdicts ~samples ()
  in
  let a = build () and b = build () in
  checks "json reports byte-identical" (Vary_report.to_string a) (Vary_report.to_string b);
  checks "text reports byte-identical" (Vary_report.to_text a) (Vary_report.to_text b);
  checki "three samples tallied" 3 (List.length a.Vary_report.vr_samples);
  checkb "nominal owns index -1" true (a.Vary_report.vr_nominal.Vary_report.vs_index = -1)

let test_percentiles () =
  checkb "empty list has no percentiles" true (Vary_report.percentiles [] = None);
  match Vary_report.percentiles [ 0.3; 0.1; 0.2 ] with
  | None -> Alcotest.fail "non-empty list must summarize"
  | Some p ->
      checkb "median" true (p.Vary_report.pc_p50 = 0.2);
      checkb "p5 is the min" true (p.Vary_report.pc_p5 = 0.1);
      checkb "p95 is the max" true (p.Vary_report.pc_p95 = 0.3);
      checkb "mean" true (abs_float (p.Vary_report.pc_mean -. 0.2) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Serve: overlay corners never alias a compiled-circuit cache entry  *)
(* ------------------------------------------------------------------ *)

let test_cache_overlay_isolation () =
  let source = "circuit t\ninput x y\noutput o\ngate g nand2 o x y\nend" in
  let corner =
    Overlay.set Overlay.empty ~gate:0
      { Overlay.entry_identity with Overlay.en_vt = 0.9 }
  in
  let key ov = Circuit_cache.key_of_source (source ^ "\x00" ^ Overlay.fingerprint ov) in
  checkb "corner fingerprint differs from nominal" true
    (Overlay.fingerprint corner <> Overlay.empty_fingerprint);
  checkb "corner keys a different cache slot" true (key Overlay.empty <> key corner);
  let cache = Circuit_cache.create ~capacity:4 in
  let c =
    match Halotis_netlist.Hnl.parse_string source with
    | Ok c -> c
    | Error _ -> Alcotest.fail "tiny circuit did not parse"
  in
  let load ov =
    Circuit_cache.find_or_compile cache ~key:(key ov)
      ~compile:(fun () -> Compiled.compile ~overlay:ov DL.tech c)
  in
  let _, hit_nominal = load Overlay.empty in
  let compiled, hit_corner = load corner in
  checkb "nominal load misses" false hit_nominal;
  checkb "corner load misses too — no aliasing" false hit_corner;
  checki "both corners cached" 2 (Circuit_cache.entries cache);
  checkb "cached entry carries its overlay" true
    (Overlay.equal compiled.Compiled.overlay corner);
  let _, hit_again = load corner in
  checkb "same corner hits" true hit_again

(* ------------------------------------------------------------------ *)
(* Checkpoint: lossless waveform-prefix roundtrip                     *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let c = Lazy.force chain in
  let spec =
    Sim.spec ~drives:[ (sid c "in", Drive.constant false) ] ~t_stop:8000. ~tech:DL.tech c
  in
  let r = Sim.run Sim.Ddm spec in
  let ck = Checkpoint.of_result r in
  let path = Filename.temp_file "halotis-test" ".checkpoint" in
  Checkpoint.write path ck;
  let ck' = Checkpoint.load path in
  Sys.remove path;
  checks "write/load roundtrips byte-for-byte" (Checkpoint.to_string ck)
    (Checkpoint.to_string ck');
  checkb "structurally equal" true (ck = ck');
  checki "every signal captured" (N.signal_count c)
    (List.length ck.Checkpoint.ck_signals)

let test_checkpoint_classic_raises () =
  let c = Lazy.force chain in
  let spec =
    Sim.spec ~drives:[ (sid c "in", Drive.constant false) ] ~t_stop:8000. ~tech:DL.tech c
  in
  let r = Sim.run Sim.Classic_inertial spec in
  checkb "classic runs cannot checkpoint" true
    (try
       ignore (Checkpoint.of_result r);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* CLI: serial / sharded / faults crosschecks on c17                  *)
(* ------------------------------------------------------------------ *)

let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".."
let exe = Filename.concat build_root (Filename.concat "bin" "halotis_cli.exe")

let data f =
  Filename.concat build_root
    (Filename.concat "examples" (Filename.concat "data" f))

let run_capture args =
  let out = Filename.temp_file "halotis_vary_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let status = Sys.command cmd in
  let stdout = journal_bytes out in
  Sys.remove out;
  (status, stdout)

(* One small workload shared by the CLI tests: c17 at width 60 has both
   propagated and electrically masked strikes. *)
let vary_args more =
  [
    "vary"; data "c17.hnl"; "--stim"; data "c17_walk.hsv"; "-n"; "6"; "--seed"; "7";
    "--width"; "60"; "--samples"; "3"; "--sigma-device"; "0.15";
  ]
  @ more

let test_cli_jobs_identical () =
  let st1, serial = run_capture (vary_args []) in
  let st2, sharded = run_capture (vary_args [ "--jobs"; "2" ]) in
  checki "serial run exits 0" 0 st1;
  checki "sharded run exits 0" 0 st2;
  checks "worker sharding changes no output byte" serial sharded

let test_cli_fixed_seed_golden () =
  let _, a = run_capture (vary_args [ "--format"; "json" ]) in
  let _, b = run_capture (vary_args [ "--format"; "json" ]) in
  checks "fixed seed reproduces the distribution byte-for-byte" a b;
  checkb "report is the vary schema" true
    (try
       String.length a > 0
       &&
       match Halotis_util.Json.parse a with
       | Ok j -> Halotis_util.Json.member "tool" j = Some (Halotis_util.Json.Str "halotis-vary")
       | Error _ -> false
     with _ -> false)

let test_cli_zero_sigma_journal_matches_faults () =
  let vbase = Filename.temp_file "halotis-vary-j" "" in
  let fpath = Filename.temp_file "halotis-faults-j" ".journal" in
  let common =
    [ data "c17.hnl"; "--stim"; data "c17_walk.hsv"; "-n"; "6"; "--seed"; "7"; "--width"; "60" ]
  in
  let stv, _ =
    run_capture
      ([ "vary" ] @ common
      @ [ "--samples"; "1"; "--sigma-device"; "0"; "--journal"; vbase ])
  in
  let stf, _ = run_capture ([ "faults" ] @ common @ [ "--journal"; fpath ]) in
  checki "vary exits 0" 0 stv;
  checki "faults exits 0" 0 stf;
  let vj = journal_bytes (vbase ^ ".s0") and fj = journal_bytes fpath in
  Sys.remove (vbase ^ ".s0");
  Sys.remove vbase;
  Sys.remove fpath;
  checks "zero-sigma sample journal byte-identical to plain faults" fj vj

let tests =
  [
    ( "vary",
      [
        Alcotest.test_case "sampler: zero sigma is empty" `Quick test_sampler_zero_sigma_empty;
        Alcotest.test_case "sampler: validation" `Quick test_sampler_validation;
        QCheck_alcotest.to_alcotest prop_sampler_deterministic;
        Alcotest.test_case "sampler: distinct corners" `Quick test_sampler_distinct_corners;
        Alcotest.test_case "sampler: covers all gates" `Quick test_sampler_covers_all_gates;
        Alcotest.test_case "aging: identity at zero stress" `Quick test_aging_identity_at_zero;
        Alcotest.test_case "aging: asymmetric shifts" `Quick test_aging_shifts;
        Alcotest.test_case "sweep: brackets the threshold" `Quick test_sweep_brackets_threshold;
        Alcotest.test_case "sweep: no failure, no ttf" `Quick test_sweep_never_fails;
        Alcotest.test_case "sweep: deterministic" `Quick test_sweep_deterministic;
        Alcotest.test_case "zero-sigma bit-identity (ddm)" `Quick
          (test_zero_sigma_bit_identity Campaign.Ddm);
        Alcotest.test_case "zero-sigma bit-identity (cdm)" `Quick
          (test_zero_sigma_bit_identity Campaign.Cdm);
        Alcotest.test_case "report: fixed-seed determinism" `Slow test_vary_report_deterministic;
        Alcotest.test_case "report: percentiles" `Quick test_percentiles;
        Alcotest.test_case "serve: overlay cache isolation" `Quick test_cache_overlay_isolation;
        Alcotest.test_case "checkpoint: roundtrip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "checkpoint: classic raises" `Quick test_checkpoint_classic_raises;
        Alcotest.test_case "cli: --jobs 2 byte-identical" `Slow test_cli_jobs_identical;
        Alcotest.test_case "cli: fixed-seed golden" `Slow test_cli_fixed_seed_golden;
        Alcotest.test_case "cli: zero-sigma journal == faults" `Slow
          test_cli_zero_sigma_journal_matches_faults;
      ] );
  ]
