(* Tests for Halotis_engine: the IDDM simulator (Fig. 4 algorithm), the
   classical baseline, drives and statistics. *)

module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Stats = Halotis_engine.Stats
module W = Halotis_wave.Waveform
module T = Halotis_wave.Transition
module D = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vt_mid = 2.5

let sid c n = match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no signal %s" n
let ddm_cfg () = Iddm.config DL.tech
let cdm_cfg () = Iddm.config ~delay_kind:DM.Cdm DL.tech

(* --- Drive --- *)

let test_drive_of_levels () =
  let d = Drive.of_levels ~slope:50. ~initial:false [ (300., true); (100., true); (500., false) ] in
  checkb "initial" false d.Drive.initial;
  (* sorted and deduplicated: change at 100 (rise), 500 (fall); the 300
     entry repeats the current level and is dropped *)
  checki "two transitions" 2 (List.length d.Drive.transitions);
  match d.Drive.transitions with
  | [ t1; t2 ] ->
      checkb "rise first" true (T.equal_polarity t1.T.polarity T.Rising);
      checkb "fall second" true (T.equal_polarity t2.T.polarity T.Falling);
      checkb "ordered" true (t1.T.start < t2.T.start)
  | _ -> Alcotest.fail "unexpected shape"

let test_drive_pulse () =
  let d = Drive.pulse ~slope:50. ~at:1000. ~width:200. () in
  checki "two transitions" 2 (List.length d.Drive.transitions);
  let d_neg = Drive.pulse ~slope:50. ~at:1000. ~width:200. ~initial:true () in
  checkb "negative pulse starts falling" true
    (match d_neg.Drive.transitions with
    | t :: _ -> T.equal_polarity t.T.polarity T.Falling
    | [] -> false)

let test_drive_check_disorder () =
  let bad =
    {
      Drive.initial = false;
      transitions =
        [
          T.make ~start:500. ~slope_time:10. ~polarity:T.Rising;
          T.make ~start:100. ~slope_time:10. ~polarity:T.Falling;
        ];
    }
  in
  checkb "raises" true
    (try
       Drive.check bad;
       false
     with Invalid_argument _ -> true)

let test_drive_constant () =
  let d = Drive.constant true in
  checkb "initial" true d.Drive.initial;
  checki "none" 0 (List.length d.Drive.transitions)

(* --- IDDM engine basics --- *)

let step_drive ?(at = 1000.) ?(slope = 100.) () =
  Drive.of_levels ~slope ~initial:false [ (at, true) ]

let test_step_through_chain () =
  let c = G.inverter_chain ~n:4 () in
  let r = Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "in", step_drive ()) ] in
  checkb "not truncated" false r.Iddm.truncated;
  checki "events" 4 r.Iddm.stats.Stats.events_processed;
  (* each internal stage switches exactly once, alternating direction *)
  List.iteri
    (fun i name ->
      let w = Iddm.waveform r name in
      match D.edges w ~vt:vt_mid with
      | [ e ] ->
          let expect_rising = i mod 2 = 1 in
          checkb (name ^ " direction") expect_rising
            (T.equal_polarity e.D.polarity T.Rising)
      | l -> Alcotest.failf "%s: expected 1 edge, got %d" name (List.length l))
    [ "out1"; "out2"; "out3"; "out" ];
  (* delays accumulate monotonically along the chain *)
  let edge_time name =
    match D.edges (Iddm.waveform r name) ~vt:vt_mid with
    | [ e ] -> e.D.at
    | _ -> Alcotest.fail "one edge expected"
  in
  let ts = List.map edge_time [ "out1"; "out2"; "out3"; "out" ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "monotone arrival" true (increasing ts);
  (* per-stage delay in a plausible 0.6um band *)
  List.iter2
    (fun t_prev t_next ->
      let d = t_next -. t_prev in
      checkb "stage delay plausible" true (d > 20. && d < 1000.))
    (1050. :: ts)
    (ts @ [ List.nth ts 3 +. 100. ])

let test_quiescent_run () =
  let c = G.inverter_chain ~n:3 () in
  let r = Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "in", Drive.constant true) ] in
  checki "no events" 0 r.Iddm.stats.Stats.events_processed;
  (* DC propagated: in=1 -> out1=0 -> out2=1 -> out=0 *)
  checkb "out1 low" true (W.initial (Iddm.waveform r "out1") < 0.1);
  checkb "out2 high" true (W.initial (Iddm.waveform r "out2") > 4.9);
  checkb "out low" true (W.initial (Iddm.waveform r "out") < 0.1)

let test_drive_on_non_input_raises () =
  let c = G.inverter_chain ~n:2 () in
  checkb "raises" true
    (try
       ignore (Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "out1", step_drive ()) ]);
       false
     with Invalid_argument _ -> true)

let ring_oscillator () =
  let b = Builder.create "ring" in
  let a = Builder.input b "a" in
  let x = Builder.signal b "x" in
  let y = Builder.signal b "y" in
  let z = Builder.signal b "z" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g1" ~inputs:[ a; z ] ~output:x in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ x ] ~output:y in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g3" ~inputs:[ y ] ~output:z in
  Builder.mark_output b z;
  Builder.finalize b

let test_oscillator_raises () =
  (* enabled NAND ring: no DC fixed point *)
  let c = ring_oscillator () in
  checkb "raises" true
    (try
       ignore (Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "a", Drive.constant true) ]);
       false
     with Invalid_argument _ -> true)

let test_waveform_lookup () =
  let c = G.inverter_chain ~n:2 () in
  let r = Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "in", step_drive ()) ] in
  checkb "found" true (W.segment_count (Iddm.waveform r "out") >= 1);
  checkb "not found" true
    (try
       ignore (Iddm.waveform r "nonexistent");
       false
     with Not_found -> true)

let test_output_edges_accessor () =
  let c = G.inverter_chain ~n:2 () in
  let r = Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "in", step_drive ()) ] in
  match Iddm.output_edges r with
  | [ (name, edges) ] ->
      Alcotest.(check string) "name" "out" name;
      checki "one edge" 1 (List.length edges)
  | l -> Alcotest.failf "expected one output, got %d" (List.length l)

let test_determinism () =
  let m = G.array_multiplier ~nand_only:true ~m:4 ~n:4 () in
  let c = m.G.mult_circuit in
  let drives =
    Halotis_stim.Vectors.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits
      ~b_bits:m.G.mb_bits Halotis_stim.Vectors.paper_sequence_a
  in
  let r1 = Iddm.run (ddm_cfg ()) c ~drives in
  let r2 = Iddm.run (ddm_cfg ()) c ~drives in
  checki "same events" r1.Iddm.stats.Stats.events_processed
    r2.Iddm.stats.Stats.events_processed;
  checki "same filtered" r1.Iddm.stats.Stats.events_filtered
    r2.Iddm.stats.Stats.events_filtered;
  Array.iteri
    (fun sidx w1 ->
      let e1 = D.edges w1 ~vt:vt_mid and e2 = D.edges r2.Iddm.waveforms.(sidx) ~vt:vt_mid in
      checki "same edge count" (List.length e1) (List.length e2))
    r1.Iddm.waveforms

let test_stats_conservation () =
  let m = G.array_multiplier ~nand_only:true ~m:4 ~n:4 () in
  let c = m.G.mult_circuit in
  let drives =
    Halotis_stim.Vectors.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits
      ~b_bits:m.G.mb_bits Halotis_stim.Vectors.paper_sequence_b
  in
  let r = Iddm.run (ddm_cfg ()) c ~drives in
  let s = r.Iddm.stats in
  checki "scheduled = processed + filtered" s.Stats.events_scheduled
    (s.Stats.events_processed + s.Stats.events_filtered);
  checkb "some filtering happened" true (s.Stats.events_filtered > 0)

let test_max_events_truncation () =
  let m = G.array_multiplier ~nand_only:true ~m:4 ~n:4 () in
  let c = m.G.mult_circuit in
  let drives =
    Halotis_stim.Vectors.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits
      ~b_bits:m.G.mb_bits Halotis_stim.Vectors.paper_sequence_a
  in
  let r = Iddm.run (Iddm.config ~max_events:10 DL.tech) c ~drives in
  checkb "truncated" true r.Iddm.truncated;
  checki "stopped at limit" 10 r.Iddm.stats.Stats.events_processed

let test_t_stop () =
  let c = G.inverter_chain ~n:6 () in
  let full = Iddm.run (ddm_cfg ()) c ~drives:[ (sid c "in", step_drive ()) ] in
  let cut =
    Iddm.run (Iddm.config ~t_stop:1200. DL.tech) c ~drives:[ (sid c "in", step_drive ()) ]
  in
  checkb "fewer events" true
    (cut.Iddm.stats.Stats.events_processed < full.Iddm.stats.Stats.events_processed);
  checkb "end time bounded" true (cut.Iddm.end_time <= 1200.)

(* --- degradation behaviour (the paper's Section 2) --- *)

let out_pulse_width cfg c width =
  let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width ()) ] in
  let r = Iddm.run cfg c ~drives in
  match D.pulses (Iddm.waveform r "out") ~vt:vt_mid with
  | [ p ] -> Some p.D.width
  | [] -> None
  | _ -> Alcotest.fail "unexpected multi-pulse"

let test_ddm_filters_narrow_pulse () =
  let c = G.inverter_chain ~n:2 () in
  checkb "narrow dies" true (out_pulse_width (ddm_cfg ()) c 120. = None);
  checkb "wide survives" true (out_pulse_width (ddm_cfg ()) c 600. <> None)

let test_cdm_does_not_degrade () =
  let c = G.inverter_chain ~n:2 () in
  (* where DDM filters, CDM still propagates (approximately preserving
     the width) *)
  match out_pulse_width (cdm_cfg ()) c 150. with
  | Some w -> checkb "width roughly preserved" true (Float.abs (w -. 150.) < 60.)
  | None -> Alcotest.fail "CDM must not filter a 150ps pulse"

let test_degradation_band_exists () =
  let c = G.inverter_chain ~n:2 () in
  (* a width where the pulse survives but is measurably narrowed: the
     pulse is neither eliminated nor propagated normally (Sec. 2) *)
  match out_pulse_width (ddm_cfg ()) c 200. with
  | Some w -> checkb "degraded" true (w < 190.)
  | None -> Alcotest.fail "200ps should be inside the degradation band"

let prop_ddm_pulse_transfer_monotone =
  QCheck.Test.make ~name:"output pulse width monotone in input width" ~count:40
    QCheck.(pair (float_range 120. 900.) (float_range 10. 120.))
    (fun (w1, dw) ->
      let c = G.inverter_chain ~n:2 () in
      let p1 = out_pulse_width (ddm_cfg ()) c w1 in
      let p2 = out_pulse_width (ddm_cfg ()) c (w1 +. dw) in
      match (p1, p2) with
      | None, (None | Some _) -> true
      | Some _, None -> false
      | Some a, Some b -> b >= a -. 1.)

let test_wide_pulse_negligible_degradation () =
  let c = G.inverter_chain ~n:2 () in
  match out_pulse_width (ddm_cfg ()) c 2000. with
  | Some w -> checkb "nearly preserved" true (Float.abs (w -. 2000.) < 30.)
  | None -> Alcotest.fail "wide pulse must survive"

(* --- Fig. 1: per-input thresholds vs classical inertial --- *)

let fig1_edge_counts width =
  let f = G.fig1_circuit () in
  let drives = [ (f.G.sig_in, Drive.pulse ~slope:100. ~at:1000. ~width ()) ] in
  let r = Iddm.run (ddm_cfg ()) f.G.circuit ~drives in
  let rc = Classic.run (Classic.config DL.tech) f.G.circuit ~drives in
  let iddm name = List.length (D.edges (Iddm.waveform r name) ~vt:vt_mid) in
  let classic name = List.length (Classic.edges_of_name rc name) in
  (iddm, classic)

let test_fig1_discrimination () =
  (* 225 ps: inside the band where the runt on out0 crosses VT1 = 1.5V
     but not VT2 = 3.5V *)
  let iddm, classic = fig1_edge_counts 225. in
  checki "iddm g1 branch sees the pulse" 2 (iddm "out1c");
  checki "iddm g2 branch does not" 0 (iddm "out2c");
  (* the classical inertial model cannot discriminate: both branches
     agree (here: both propagate) — the paper's Fig. 1(c) failure *)
  checki "classic g1 branch" 2 (classic "out1c");
  checki "classic g2 branch" 2 (classic "out2c")

let test_fig1_classic_all_or_none () =
  List.iter
    (fun width ->
      let _, classic = fig1_edge_counts width in
      checki
        (Printf.sprintf "width %.0f: classic branches agree" width)
        (classic "out1c") (classic "out2c"))
    [ 100.; 150.; 200.; 250.; 300.; 400.; 600. ]

let test_fig1_wide_pulse_everywhere () =
  let iddm, classic = fig1_edge_counts 600. in
  checki "iddm both" 2 (iddm "out1c");
  checki "iddm both 2" 2 (iddm "out2c");
  checki "classic both" 2 (classic "out1c");
  checki "classic both 2" 2 (classic "out2c")

(* --- cancellation ablation --- *)

let test_cancellation_ablation () =
  let c = G.inverter_chain ~n:4 () in
  let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:150. ()) ] in
  let on = Iddm.run (Iddm.config DL.tech) c ~drives in
  let off = Iddm.run (Iddm.config ~cancellation:false DL.tech) c ~drives in
  checki "no filtering when disabled" 0 off.Iddm.stats.Stats.events_filtered;
  checkb "ablation processes at least as many events" true
    (off.Iddm.stats.Stats.events_processed >= on.Iddm.stats.Stats.events_processed);
  checkb "filtering active normally" true (on.Iddm.stats.Stats.events_filtered > 0)

(* --- feedback / latches (DC relaxation) --- *)

let test_dc_latch_bistable () =
  let l = G.sr_latch () in
  let drives =
    [ (l.G.sig_s_n, Drive.constant true); (l.G.sig_r_n, Drive.constant true) ]
  in
  let r = Iddm.run (ddm_cfg ()) l.G.latch_circuit ~drives in
  checkb "q settles high" true (D.final_level r.Iddm.waveforms.(l.G.sig_q) ~vt:vt_mid);
  checkb "qb settles low" false (D.final_level r.Iddm.waveforms.(l.G.sig_qb) ~vt:vt_mid);
  checki "quiescent" 0 r.Iddm.stats.Stats.events_processed

let test_latch_set_reset () =
  let l = G.sr_latch () in
  (* reset pulse, then set pulse *)
  let drives =
    [
      (l.G.sig_s_n, Drive.of_levels ~slope:100. ~initial:true [ (5000., false); (6000., true) ]);
      (l.G.sig_r_n, Drive.of_levels ~slope:100. ~initial:true [ (1000., false); (2000., true) ]);
    ]
  in
  let r = Iddm.run (ddm_cfg ()) l.G.latch_circuit ~drives in
  let q = r.Iddm.waveforms.(l.G.sig_q) in
  checkb "reset took" false (D.level_at q ~vt:vt_mid 4000.);
  checkb "set took" true (D.level_at q ~vt:vt_mid 9000.);
  checkb "final high" true (D.final_level q ~vt:vt_mid)

let test_latch_holds_state () =
  (* after a reset pulse the latch must hold 0 indefinitely *)
  let l = G.sr_latch () in
  let drives =
    [
      (l.G.sig_s_n, Drive.constant true);
      (l.G.sig_r_n, Drive.of_levels ~slope:100. ~initial:true [ (1000., false); (2000., true) ]);
    ]
  in
  let r = Iddm.run (ddm_cfg ()) l.G.latch_circuit ~drives in
  checkb "holds low" false (D.final_level r.Iddm.waveforms.(l.G.sig_q) ~vt:vt_mid);
  checkb "finished" false r.Iddm.truncated

let test_latch_glitch_discrimination () =
  (* the LATCH experiment's operating point: the degraded glitch flips
     the low-VT latch only; the classical model resets both *)
  let lg = G.latch_glitch_circuit () in
  let drives = [ (lg.G.lg_in, Drive.pulse ~slope:100. ~at:1000. ~width:250. ()) ] in
  let rd = Iddm.run (ddm_cfg ()) lg.G.lg_circuit ~drives in
  let rc = Classic.run (Classic.config DL.tech) lg.G.lg_circuit ~drives in
  checkb "ddm low latch flips" false
    (D.final_level rd.Iddm.waveforms.(lg.G.lg_q_low) ~vt:vt_mid);
  checkb "ddm high latch holds" true
    (D.final_level rd.Iddm.waveforms.(lg.G.lg_q_high) ~vt:vt_mid);
  checkb "classic resets low" false rc.Classic.final_levels.(lg.G.lg_q_low);
  checkb "classic wrongly resets high" false rc.Classic.final_levels.(lg.G.lg_q_high)

let test_classic_latch () =
  let l = G.sr_latch () in
  let drives =
    [
      (l.G.sig_s_n, Drive.constant true);
      (l.G.sig_r_n, Drive.of_levels ~slope:100. ~initial:true [ (1000., false); (2000., true) ]);
    ]
  in
  let r = Classic.run (Classic.config DL.tech) l.G.latch_circuit ~drives in
  checkb "initial q high" true r.Classic.initial_levels.(l.G.sig_q);
  checkb "reset held" false r.Classic.final_levels.(l.G.sig_q)

(* --- Classic engine --- *)

let test_classic_step () =
  let c = G.inverter_chain ~n:3 () in
  let r = Classic.run (Classic.config DL.tech) c ~drives:[ (sid c "in", step_drive ()) ] in
  checki "out switches once" 1 (List.length (Classic.edges_of_name r "out"));
  (* odd chain inverts the step: out goes 1 -> 0 *)
  checkb "final low" false r.Classic.final_levels.(sid c "out");
  checkb "initial high" true r.Classic.initial_levels.(sid c "out")

let test_classic_inertial_filtering () =
  let c = G.inverter_chain ~n:2 () in
  let narrow = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:60. ()) ] in
  let wide = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:800. ()) ] in
  let rn = Classic.run (Classic.config DL.tech) c ~drives:narrow in
  let rw = Classic.run (Classic.config DL.tech) c ~drives:wide in
  checki "narrow filtered" 0 (List.length (Classic.edges_of_name rn "out"));
  checki "wide propagates" 2 (List.length (Classic.edges_of_name rw "out"))

let test_classic_final_matches_static () =
  let m = G.array_multiplier ~nand_only:false ~m:4 ~n:4 () in
  let c = m.G.mult_circuit in
  List.iter
    (fun op ->
      let drives =
        Halotis_stim.Vectors.multiplier_drives ~slope:100. ~period:5000.
          ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits
          [ { Halotis_stim.Vectors.op_a = 0; op_b = 0 }; op ]
      in
      let r = Classic.run (Classic.config DL.tech) c ~drives in
      let product =
        List.fold_left
          (fun acc (i, s) -> if r.Classic.final_levels.(s) then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i s -> (i, s)) m.G.product_bits)
      in
      checki
        (Format.asprintf "%a" Halotis_stim.Vectors.pp_mult_op op)
        (Halotis_stim.Vectors.expected_product op)
        product)
    (Halotis_stim.Vectors.random_ops ~bits:4 ~count:12 ~seed:99)

let test_classic_oscillator_raises () =
  let c = ring_oscillator () in
  checkb "raises" true
    (try
       ignore
         (Classic.run (Classic.config DL.tech) c ~drives:[ (sid c "a", Drive.constant true) ]);
       false
     with Invalid_argument _ -> true)

(* --- Stats --- *)

let test_stats_copy_pp () =
  let s = Stats.create () in
  s.Stats.events_scheduled <- 5;
  let s' = Stats.copy s in
  s.Stats.events_scheduled <- 9;
  checki "copy isolated" 5 s'.Stats.events_scheduled;
  checkb "pp prints" true (String.length (Format.asprintf "%a" Stats.pp s) > 10)

let stats_of (a, b, c, d, e, f) =
  let s = Stats.create () in
  s.Stats.events_scheduled <- a;
  s.Stats.events_processed <- b;
  s.Stats.events_filtered <- c;
  s.Stats.transitions_emitted <- d;
  s.Stats.transitions_annulled <- e;
  s.Stats.noop_evaluations <- f;
  s

let test_stats_merge () =
  let acc = stats_of (1, 2, 3, 4, 5, 6) in
  Stats.merge acc (stats_of (10, 20, 30, 40, 50, 60));
  checki "scheduled" 11 acc.Stats.events_scheduled;
  checki "processed" 22 acc.Stats.events_processed;
  checki "filtered" 33 acc.Stats.events_filtered;
  checki "emitted" 44 acc.Stats.transitions_emitted;
  checki "annulled" 55 acc.Stats.transitions_annulled;
  checki "noop" 66 acc.Stats.noop_evaluations;
  checki "total" 231 (Stats.total acc)

let test_stats_diff () =
  let a = stats_of (11, 22, 33, 44, 55, 66) in
  let b = stats_of (1, 2, 3, 4, 5, 6) in
  let d = Stats.diff a b in
  checki "scheduled" 10 d.Stats.events_scheduled;
  checki "processed" 20 d.Stats.events_processed;
  checki "filtered" 30 d.Stats.events_filtered;
  checki "emitted" 40 d.Stats.transitions_emitted;
  checki "annulled" 50 d.Stats.transitions_annulled;
  checki "noop" 60 d.Stats.noop_evaluations;
  (* diff then merge restores the minuend *)
  Stats.merge d b;
  checki "diff+merge roundtrip" (Stats.total a) (Stats.total d);
  (* deltas may be negative; diff of a stat against itself is zero *)
  checki "self diff" 0 (Stats.total (Stats.diff b b))

let tests =
  [
    ( "engine.drive",
      [
        Alcotest.test_case "of_levels" `Quick test_drive_of_levels;
        Alcotest.test_case "pulse" `Quick test_drive_pulse;
        Alcotest.test_case "check disorder" `Quick test_drive_check_disorder;
        Alcotest.test_case "constant" `Quick test_drive_constant;
      ] );
    ( "engine.iddm",
      [
        Alcotest.test_case "step through chain" `Quick test_step_through_chain;
        Alcotest.test_case "quiescent" `Quick test_quiescent_run;
        Alcotest.test_case "drive on non-input" `Quick test_drive_on_non_input_raises;
        Alcotest.test_case "oscillator raises" `Quick test_oscillator_raises;
        Alcotest.test_case "waveform lookup" `Quick test_waveform_lookup;
        Alcotest.test_case "output edges" `Quick test_output_edges_accessor;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "stats conservation" `Quick test_stats_conservation;
        Alcotest.test_case "max_events truncation" `Quick test_max_events_truncation;
        Alcotest.test_case "t_stop" `Quick test_t_stop;
      ] );
    ( "engine.degradation",
      [
        Alcotest.test_case "narrow pulse filtered" `Quick test_ddm_filters_narrow_pulse;
        Alcotest.test_case "cdm does not degrade" `Quick test_cdm_does_not_degrade;
        Alcotest.test_case "degradation band" `Quick test_degradation_band_exists;
        Alcotest.test_case "wide pulse preserved" `Quick
          test_wide_pulse_negligible_degradation;
        QCheck_alcotest.to_alcotest prop_ddm_pulse_transfer_monotone;
      ] );
    ( "engine.fig1",
      [
        Alcotest.test_case "threshold discrimination" `Quick test_fig1_discrimination;
        Alcotest.test_case "classic all-or-none" `Quick test_fig1_classic_all_or_none;
        Alcotest.test_case "wide pulse everywhere" `Quick test_fig1_wide_pulse_everywhere;
      ] );
    ( "engine.ablation",
      [ Alcotest.test_case "cancellation off" `Quick test_cancellation_ablation ] );
    ( "engine.feedback",
      [
        Alcotest.test_case "dc bistable" `Quick test_dc_latch_bistable;
        Alcotest.test_case "set/reset" `Quick test_latch_set_reset;
        Alcotest.test_case "holds state" `Quick test_latch_holds_state;
        Alcotest.test_case "glitch discrimination" `Quick test_latch_glitch_discrimination;
        Alcotest.test_case "classic latch" `Quick test_classic_latch;
      ] );
    ( "engine.classic",
      [
        Alcotest.test_case "step" `Quick test_classic_step;
        Alcotest.test_case "inertial filtering" `Quick test_classic_inertial_filtering;
        Alcotest.test_case "final matches static" `Quick test_classic_final_matches_static;
        Alcotest.test_case "oscillator raises" `Quick test_classic_oscillator_raises;
      ] );
    ( "engine.stats",
      [
        Alcotest.test_case "copy and pp" `Quick test_stats_copy_pp;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "diff" `Quick test_stats_diff;
      ] );
  ]
