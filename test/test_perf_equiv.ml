(* Observational-equivalence suite for the optimized event kernels.

   The hot-path overhaul (pool-slot events, lazy cancellation, SoA
   heap, coefficient cache, SoA waveform store) claims bit-identical
   results to the straightforward algorithm.  This file re-implements
   both engines the obvious way — boxed polymorphic heap with eager
   handle-based cancellation, per-gate input arrays, the uncached
   [Delay_model.for_gate] — and checks that optimized and reference
   runs agree exactly (float-for-float) on random circuits across
   {DDM, CDM} x {cancellation on/off} x {with/without injections}. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model
module Heap = Halotis_util.Heap
module Gate_kind = Halotis_logic.Gate_kind
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Stats = Halotis_engine.Stats
module Drive = Halotis_engine.Drive
module Dc = Halotis_engine.Dc
module Prng = Halotis_util.Prng

let tech = Halotis_tech.Default_lib.tech

(* ------------------------------------------------------------------ *)
(* Reference IDDM kernel                                              *)
(* ------------------------------------------------------------------ *)

module Ref_iddm = struct
  type ev = {
    gate : int;  (** -1 = injection splice *)
    pin : int;  (** injection index when [gate = -1] *)
    rising : bool;
    tau_in : float;
  }

  type result = {
    waveforms : Waveform.t array;
    stats : Stats.t;
    end_time : float;
    truncated : bool;
  }

  let run ?(injections = []) (cfg : Iddm.config) c ~drives =
    let drives_tbl = Hashtbl.create 16 in
    List.iter (fun (sid, d) -> Hashtbl.replace drives_tbl sid d) drives;
    let input_level sid =
      match Hashtbl.find_opt drives_tbl sid with
      | Some (d : Drive.t) -> d.Drive.initial
      | None -> false
    in
    let levels = Dc.levels c ~input_level in
    let vdd = Tech.vdd cfg.Iddm.tech in
    let nsignals = N.signal_count c and ngates = N.gate_count c in
    let wf =
      Array.init nsignals (fun sid ->
          Waveform.create ~initial:(if levels.(sid) then vdd else 0.) ~vdd ())
    in
    let pin_levels =
      Array.init ngates (fun gid ->
          Array.map (fun sid -> levels.(sid)) (N.gate c gid).N.fanin)
    in
    let vt_table = Halotis_delay.Thresholds.table cfg.Iddm.tech c in
    let out_target = Array.init ngates (fun gid -> levels.((N.gate c gid).N.output)) in
    let loads = Halotis_delay.Loads.of_netlist cfg.Iddm.tech c in
    let queue : ev Heap.t = Heap.create () in
    (* eager cancellation: per (gate, pin), the handles of pending events *)
    let pending = Array.init ngates (fun gid -> Array.map (fun _ -> []) (N.gate c gid).N.fanin) in
    (* global pin-slot offsets — the engine's intrinsic heap tie-break
       ranks, reproduced so equal-key events pop in the same order *)
    let pin_base = Array.make (ngates + 1) 0 in
    for gid = 0 to ngates - 1 do
      pin_base.(gid + 1) <- pin_base.(gid) + Array.length (N.gate c gid).N.fanin
    done;
    let stats = Stats.create () in
    let injections = Array.of_list injections in
    let schedule ~key ~gate ~pin ~rising ~tau_in =
      let h =
        Heap.insert queue ~key ~rank:(pin_base.(gate) + pin) { gate; pin; rising; tau_in }
      in
      if cfg.Iddm.cancellation then pending.(gate).(pin) <- pending.(gate).(pin) @ [ h ];
      stats.Stats.events_scheduled <- stats.Stats.events_scheduled + 1
    in
    let cancel_invalidated ~gate ~pin ~from_time =
      pending.(gate).(pin) <-
        List.filter
          (fun h ->
            match Heap.key_of queue h with
            | None -> false (* already popped *)
            | Some k when k >= from_time ->
                ignore (Heap.remove queue h);
                stats.Stats.events_filtered <- stats.Stats.events_filtered + 1;
                false
            | Some _ -> true)
          pending.(gate).(pin)
    in
    let fan_out sid (outcome : Waveform.append_outcome) (tr : Transition.t) =
      let rising =
        match tr.Transition.polarity with
        | Transition.Rising -> true
        | Transition.Falling -> false
      in
      Array.iter
        (fun (lg, lpin) ->
          if cfg.Iddm.cancellation then
            cancel_invalidated ~gate:lg ~pin:lpin ~from_time:tr.Transition.start;
          if outcome.Waveform.accepted then
            match Waveform.crossing_of_last wf.(sid) ~vt:vt_table.(lg).(lpin) with
            | Some crossing ->
                schedule ~key:crossing ~gate:lg ~pin:lpin ~rising
                  ~tau_in:tr.Transition.slope_time
            | None -> ())
        (N.signal c sid).N.loads
    in
    let process_pin_event ~now ~gate ~pin ~rising ~tau_in =
      pin_levels.(gate).(pin) <- rising;
      let g = N.gate c gate in
      let new_out = Gate_kind.eval_bool g.N.kind pin_levels.(gate) in
      if new_out = out_target.(gate) then
        stats.Stats.noop_evaluations <- stats.Stats.noop_evaluations + 1
      else begin
        let out_sid = g.N.output in
        let resp =
          Delay_model.for_gate cfg.Iddm.tech c ~loads gate cfg.Iddm.delay_kind
            {
              Delay_model.rising_out = new_out;
              pin;
              tau_in;
              t_event = now;
              last_output_start = Waveform.last_start wf.(out_sid);
            }
        in
        let tr =
          Transition.make
            ~start:(now +. resp.Delay_model.tp)
            ~slope_time:resp.Delay_model.tau_out
            ~polarity:(if new_out then Transition.Rising else Transition.Falling)
        in
        out_target.(gate) <- new_out;
        let outcome = Waveform.append wf.(out_sid) tr in
        stats.Stats.transitions_annulled <-
          stats.Stats.transitions_annulled + List.length outcome.Waveform.dropped;
        if outcome.Waveform.accepted then
          stats.Stats.transitions_emitted <- stats.Stats.transitions_emitted + 1;
        fan_out out_sid outcome tr
      end
    in
    let process_injection (inj : Iddm.injection) =
      List.iter
        (fun (tr : Transition.t) ->
          let outcome = Waveform.append wf.(inj.Iddm.inj_signal) tr in
          fan_out inj.Iddm.inj_signal outcome tr)
        inj.Iddm.inj_transitions
    in
    Hashtbl.iter
      (fun sid (d : Drive.t) ->
        List.iter (fun tr -> ignore (Waveform.append wf.(sid) tr)) d.Drive.transitions)
      drives_tbl;
    Hashtbl.iter
      (fun sid (_ : Drive.t) ->
        Array.iter
          (fun (lg, lpin) ->
            List.iter
              (fun (crossing, (tr : Transition.t)) ->
                schedule ~key:crossing ~gate:lg ~pin:lpin
                  ~rising:
                    (match tr.Transition.polarity with
                    | Transition.Rising -> true
                    | Transition.Falling -> false)
                  ~tau_in:tr.Transition.slope_time)
              (Waveform.crossings_with_transitions wf.(sid) ~vt:vt_table.(lg).(lpin)))
          (N.signal c sid).N.loads)
      drives_tbl;
    Array.iteri
      (fun idx (inj : Iddm.injection) ->
        match inj.Iddm.inj_transitions with
        | [] -> ()
        | first :: _ ->
            ignore
              (Heap.insert queue ~key:first.Transition.start ~rank:(idx - max_int)
                 { gate = -1; pin = idx; rising = false; tau_in = 0. }))
      injections;
    let end_time = ref 0. in
    let truncated = ref false in
    let continue = ref true in
    while !continue do
      match Heap.peek_min queue with
      | None -> continue := false
      | Some (t, _) -> (
          match cfg.Iddm.t_stop with
          | Some stop when t > stop -> continue := false
          | Some _ | None ->
              let t, ev = Option.get (Heap.pop_min queue) in
              end_time := Float.max !end_time t;
              if ev.gate < 0 then process_injection injections.(ev.pin)
              else begin
                stats.Stats.events_processed <- stats.Stats.events_processed + 1;
                process_pin_event ~now:t ~gate:ev.gate ~pin:ev.pin ~rising:ev.rising
                  ~tau_in:ev.tau_in
              end;
              if stats.Stats.events_processed >= cfg.Iddm.max_events then begin
                truncated := true;
                continue := false
              end)
    done;
    { waveforms = wf; stats; end_time = !end_time; truncated = !truncated }
end

(* ------------------------------------------------------------------ *)
(* Reference Classic kernel                                           *)
(* ------------------------------------------------------------------ *)

module Ref_classic = struct
  type tx = { sid : int; at : float; value : bool; mutable handle : tx Heap.handle option }

  type result = {
    edges : Digital.edge list array;
    final_levels : bool array;
    stats : Stats.t;
    end_time : float;
    truncated : bool;
  }

  let run ?(injections = []) (cfg : Classic.config) c ~drives =
    let drives_tbl = Hashtbl.create 16 in
    List.iter (fun (sid, d) -> Hashtbl.replace drives_tbl sid d) drives;
    let input_level sid =
      match Hashtbl.find_opt drives_tbl sid with
      | Some (d : Drive.t) -> d.Drive.initial
      | None -> false
    in
    let levels = Dc.levels c ~input_level in
    let nsignals = N.signal_count c in
    let value = Array.copy levels in
    let pending : tx list array = Array.make nsignals [] in
    let queue : tx Heap.t = Heap.create () in
    let rev_edges = Array.make nsignals [] in
    let loads = Halotis_delay.Loads.of_netlist cfg.Classic.tech c in
    let stats = Stats.create () in
    let enqueue ~sid ~at ~value =
      let tx = { sid; at; value; handle = None } in
      tx.handle <- Some (Heap.insert queue ~key:at tx);
      tx
    in
    let scheduled_target sid =
      match List.rev pending.(sid) with [] -> value.(sid) | last :: _ -> last.value
    in
    let schedule_inertial sid ~at ~value:v ~window =
      let keep, kill = List.partition (fun tx -> tx.at < at) pending.(sid) in
      List.iter
        (fun tx ->
          (match tx.handle with Some h -> ignore (Heap.remove queue h) | None -> ());
          stats.Stats.events_filtered <- stats.Stats.events_filtered + 1)
        kill;
      pending.(sid) <- keep;
      let target = scheduled_target sid in
      if target = v then stats.Stats.noop_evaluations <- stats.Stats.noop_evaluations + 1
      else begin
        let last = match List.rev keep with [] -> None | last :: _ -> Some last in
        match last with
        | Some tx when cfg.Classic.mode = Classic.Inertial && at -. tx.at < window ->
            (match tx.handle with Some h -> ignore (Heap.remove queue h) | None -> ());
            pending.(sid) <- List.filter (fun t -> t != tx) pending.(sid);
            stats.Stats.events_filtered <- stats.Stats.events_filtered + 2
        | Some _ | None ->
            let tx = enqueue ~sid ~at ~value:v in
            pending.(sid) <- pending.(sid) @ [ tx ];
            stats.Stats.events_scheduled <- stats.Stats.events_scheduled + 1
      end
    in
    let evaluate_fanout ~now sid =
      List.iter
        (fun gid ->
          let g = N.gate c gid in
          let ins = Array.map (fun s -> value.(s)) g.N.fanin in
          let new_out = Gate_kind.eval_bool g.N.kind ins in
          let out_sid = g.N.output in
          if new_out <> scheduled_target out_sid then begin
            let rec find i = if g.N.fanin.(i) = sid then i else find (i + 1) in
            let resp =
              Delay_model.for_gate cfg.Classic.tech c ~loads gid Delay_model.Cdm
                {
                  Delay_model.rising_out = new_out;
                  pin = find 0;
                  tau_in = 0.;
                  t_event = now;
                  last_output_start = None;
                }
            in
            schedule_inertial out_sid ~at:(now +. resp.Delay_model.tp) ~value:new_out
              ~window:resp.Delay_model.tp
          end
          else stats.Stats.noop_evaluations <- stats.Stats.noop_evaluations + 1)
        (N.fanout_gates c sid)
    in
    Hashtbl.iter
      (fun sid (d : Drive.t) ->
        List.iter
          (fun (tr : Transition.t) ->
            let at = tr.Transition.start +. (tr.Transition.slope_time /. 2.) in
            let v =
              match tr.Transition.polarity with
              | Transition.Rising -> true
              | Transition.Falling -> false
            in
            let tx = enqueue ~sid ~at ~value:v in
            pending.(sid) <- pending.(sid) @ [ tx ];
            stats.Stats.events_scheduled <- stats.Stats.events_scheduled + 1)
          d.Drive.transitions)
      drives_tbl;
    List.iter
      (fun (sid, toggles) ->
        List.iter (fun (at, v) -> ignore (enqueue ~sid ~at ~value:v)) toggles)
      injections;
    let end_time = ref 0. in
    let truncated = ref false in
    let continue = ref true in
    while !continue do
      match Heap.peek_min queue with
      | None -> continue := false
      | Some (t, _) -> (
          match cfg.Classic.t_stop with
          | Some stop when t > stop -> continue := false
          | Some _ | None ->
              let t, tx = Option.get (Heap.pop_min queue) in
              stats.Stats.events_processed <- stats.Stats.events_processed + 1;
              end_time := Float.max !end_time t;
              pending.(tx.sid) <- List.filter (fun x -> x != tx) pending.(tx.sid);
              if value.(tx.sid) <> tx.value then begin
                value.(tx.sid) <- tx.value;
                let polarity = if tx.value then Transition.Rising else Transition.Falling in
                rev_edges.(tx.sid) <- { Digital.at = t; polarity } :: rev_edges.(tx.sid);
                stats.Stats.transitions_emitted <- stats.Stats.transitions_emitted + 1;
                evaluate_fanout ~now:t tx.sid
              end;
              if stats.Stats.events_processed >= cfg.Classic.max_events then begin
                truncated := true;
                continue := false
              end)
    done;
    {
      edges = Array.map List.rev rev_edges;
      final_levels = value;
      stats;
      end_time = !end_time;
      truncated = !truncated;
    }
end

(* ------------------------------------------------------------------ *)
(* Workload generation (deterministic per seed)                       *)
(* ------------------------------------------------------------------ *)

let workload ~gates ~seed =
  let c = G.random_combinational ~gates ~inputs:6 ~seed () in
  let rng = Prng.create ~seed:(seed * 7 + 1) in
  let drives =
    List.map
      (fun s ->
        let changes =
          List.init 6 (fun k ->
              (300. *. float_of_int (k + 1) +. Prng.float rng ~bound:120., Prng.bool rng))
        in
        (s, Drive.of_levels ~slope:(20. +. Prng.float rng ~bound:40.) ~initial:(Prng.bool rng) changes))
      (N.primary_inputs c)
  in
  (c, drives)

let iddm_injections c ~seed =
  let rng = Prng.create ~seed:(seed * 31 + 5) in
  let nsignals = N.signal_count c in
  List.init 2 (fun _ ->
      let sid = Prng.int rng ~bound:nsignals in
      let at = 200. +. Prng.float rng ~bound:1500. in
      let width = 40. +. Prng.float rng ~bound:150. in
      let slope = 15. +. Prng.float rng ~bound:30. in
      {
        Iddm.inj_signal = sid;
        inj_transitions =
          [
            Transition.make ~start:at ~slope_time:slope ~polarity:Transition.Rising;
            Transition.make ~start:(at +. width) ~slope_time:slope
              ~polarity:Transition.Falling;
          ];
      })

let classic_injections c ~seed =
  let rng = Prng.create ~seed:(seed * 31 + 5) in
  let nsignals = N.signal_count c in
  List.init 2 (fun _ ->
      let sid = Prng.int rng ~bound:nsignals in
      let at = 200. +. Prng.float rng ~bound:1500. in
      let width = 40. +. Prng.float rng ~bound:150. in
      (sid, [ (at, true); (at +. width, false) ]))

(* ------------------------------------------------------------------ *)
(* Comparators: exact equality, float-for-float                       *)
(* ------------------------------------------------------------------ *)

let check_stats_equal label (a : Stats.t) (b : Stats.t) =
  let field name fa fb = if fa <> fb then Alcotest.failf "%s: %s %d <> %d" label name fa fb in
  field "events_scheduled" a.Stats.events_scheduled b.Stats.events_scheduled;
  field "events_processed" a.Stats.events_processed b.Stats.events_processed;
  field "events_filtered" a.Stats.events_filtered b.Stats.events_filtered;
  field "transitions_emitted" a.Stats.transitions_emitted b.Stats.transitions_emitted;
  field "transitions_annulled" a.Stats.transitions_annulled b.Stats.transitions_annulled;
  field "noop_evaluations" a.Stats.noop_evaluations b.Stats.noop_evaluations

let check_waveforms_equal label (a : Waveform.t array) (b : Waveform.t array) =
  Array.iteri
    (fun sid wa ->
      let wb = b.(sid) in
      if Waveform.segment_count wa <> Waveform.segment_count wb then
        Alcotest.failf "%s: signal %d segment count %d <> %d" label sid
          (Waveform.segment_count wa) (Waveform.segment_count wb);
      for i = 0 to Waveform.segment_count wa - 1 do
        let sa = Waveform.get_segment wa i and sb = Waveform.get_segment wb i in
        let ta = sa.Waveform.transition and tb = sb.Waveform.transition in
        (* exact float equality: the optimized kernel must compute the
           very same expressions, not merely close ones *)
        if
          ta.Transition.start <> tb.Transition.start
          || ta.Transition.slope_time <> tb.Transition.slope_time
          || not (Transition.equal_polarity ta.Transition.polarity tb.Transition.polarity)
          || sa.Waveform.v_start <> sb.Waveform.v_start
        then
          Alcotest.failf "%s: signal %d segment %d differs (%s vs %s)" label sid i
            (Format.asprintf "%a" Transition.pp ta)
            (Format.asprintf "%a" Transition.pp tb)
      done)
    a

let check_edges_equal label (a : Digital.edge list array) (b : Digital.edge list array) =
  Array.iteri
    (fun sid ea ->
      let eb = b.(sid) in
      if List.length ea <> List.length eb then
        Alcotest.failf "%s: signal %d edge count %d <> %d" label sid (List.length ea)
          (List.length eb);
      List.iter2
        (fun (x : Digital.edge) (y : Digital.edge) ->
          if x.Digital.at <> y.Digital.at || not (Transition.equal_polarity x.polarity y.polarity)
          then Alcotest.failf "%s: signal %d edge differs" label sid)
        ea eb)
    a

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let iddm_case_gen =
  QCheck.make
    ~print:(fun (gates, seed, ddm, cancel, inject) ->
      Printf.sprintf "gates=%d seed=%d ddm=%b cancellation=%b injections=%b" gates seed ddm
        cancel inject)
    QCheck.Gen.(
      (fun gates seed ddm cancel inject -> (gates, seed, ddm, cancel, inject))
      <$> int_range 5 60 <*> int_range 0 10_000 <*> bool <*> bool <*> bool)

let prop_iddm_matches_reference =
  QCheck.Test.make ~name:"optimized Iddm == reference kernel (exact)" ~count:60 iddm_case_gen
    (fun (gates, seed, ddm, cancellation, inject) ->
      let c, drives = workload ~gates ~seed in
      let cfg =
        Iddm.config
          ~delay_kind:(if ddm then Delay_model.Ddm else Delay_model.Cdm)
          ~cancellation tech
      in
      let injections = if inject then iddm_injections c ~seed else [] in
      let opt = Iddm.run ~injections cfg c ~drives in
      let reference = Ref_iddm.run ~injections cfg c ~drives in
      let label = Printf.sprintf "iddm gates=%d seed=%d" gates seed in
      check_stats_equal label opt.Iddm.stats reference.Ref_iddm.stats;
      check_waveforms_equal label opt.Iddm.waveforms reference.Ref_iddm.waveforms;
      if opt.Iddm.end_time <> reference.Ref_iddm.end_time then
        Alcotest.failf "%s: end_time %g <> %g" label opt.Iddm.end_time
          reference.Ref_iddm.end_time;
      if opt.Iddm.truncated <> reference.Ref_iddm.truncated then
        Alcotest.failf "%s: truncated differs" label;
      (* drained queue: every tombstoned event must have been skipped *)
      if
        cancellation
        && opt.Iddm.stats.Stats.stale_skipped <> opt.Iddm.stats.Stats.events_filtered
      then
        Alcotest.failf "%s: stale_skipped %d <> events_filtered %d" label
          opt.Iddm.stats.Stats.stale_skipped opt.Iddm.stats.Stats.events_filtered;
      true)

let classic_case_gen =
  QCheck.make
    ~print:(fun (gates, seed, inject) ->
      Printf.sprintf "gates=%d seed=%d injections=%b" gates seed inject)
    QCheck.Gen.(
      (fun gates seed inject -> (gates, seed, inject))
      <$> int_range 5 60 <*> int_range 0 10_000 <*> bool)

let prop_classic_matches_reference =
  QCheck.Test.make ~name:"optimized Classic == reference kernel (exact)" ~count:60
    classic_case_gen (fun (gates, seed, inject) ->
      let c, drives = workload ~gates ~seed in
      let cfg = Classic.config tech in
      let injections = if inject then classic_injections c ~seed else [] in
      let opt = Classic.run ~injections cfg c ~drives in
      let reference = Ref_classic.run ~injections cfg c ~drives in
      let label = Printf.sprintf "classic gates=%d seed=%d" gates seed in
      check_stats_equal label opt.Classic.stats reference.Ref_classic.stats;
      check_edges_equal label opt.Classic.edges reference.Ref_classic.edges;
      if opt.Classic.final_levels <> reference.Ref_classic.final_levels then
        Alcotest.failf "%s: final levels differ" label;
      if opt.Classic.end_time <> reference.Ref_classic.end_time then
        Alcotest.failf "%s: end_time differs" label;
      true)

(* Heap.Unboxed against a stable sorted-list oracle: same pop order
   (FIFO among equal keys), same min_key at every step. *)
let prop_unboxed_heap_oracle =
  let op_gen =
    QCheck.Gen.(list_size (int_range 1 400) (option (int_range 0 20)))
    (* Some k = insert with key k/4. (duplicates likely); None = pop *)
  in
  QCheck.Test.make ~name:"Heap.Unboxed == sorted-list oracle" ~count:200
    (QCheck.make op_gen) (fun ops ->
      let h = Heap.Unboxed.create ~capacity:2 () in
      let oracle = ref [] (* (key, seq, payload), pop order = (key, seq) *) in
      let seq = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Some k ->
              let key = float_of_int k /. 4. in
              ignore (Heap.Unboxed.insert h ~key !seq);
              oracle := !oracle @ [ (key, !seq) ];
              incr seq
          | None -> (
              let expect =
                List.sort
                  (fun (ka, sa) (kb, sb) ->
                    match Float.compare ka kb with 0 -> compare sa sb | c -> c)
                  !oracle
              in
              match expect with
              | [] ->
                  if not (Heap.Unboxed.is_empty h) then
                    Alcotest.failf "heap not empty when oracle is";
                  if Heap.Unboxed.pop_min h <> None then
                    Alcotest.failf "pop_min on empty heap returned an entry"
              | (ek, es) :: _ ->
                  if Heap.Unboxed.min_key h <> ek then
                    Alcotest.failf "min_key %g, oracle %g" (Heap.Unboxed.min_key h) ek;
                  let v = Heap.Unboxed.pop h in
                  if v <> es then Alcotest.failf "pop payload %d, oracle %d" v es;
                  oracle := List.filter (fun (_, s) -> s <> es) !oracle))
        ops;
      (* drain what's left and compare the full tail order *)
      let expect =
        List.sort
          (fun (ka, sa) (kb, sb) -> match Float.compare ka kb with 0 -> compare sa sb | c -> c)
          !oracle
      in
      let drained = ref [] in
      let rec drain () =
        match Heap.Unboxed.pop_min h with
        | None -> ()
        | Some (k, v) ->
            drained := (k, v) :: !drained;
            drain ()
      in
      drain ();
      List.rev !drained = expect)

(* The coefficient cache against the uncached reference, including the
   allocation-free scalar entry point. *)
let prop_cache_matches_reference =
  let gen =
    QCheck.make
      ~print:(fun (gates, seed) -> Printf.sprintf "gates=%d seed=%d" gates seed)
      QCheck.Gen.((fun gates seed -> (gates, seed)) <$> int_range 3 40 <*> int_range 0 10_000)
  in
  QCheck.Test.make ~name:"Delay_model.Cache == uncached for_gate (exact)" ~count:60 gen
    (fun (gates, seed) ->
      let c = G.random_combinational ~gates ~inputs:4 ~seed () in
      let loads = Halotis_delay.Loads.of_netlist tech c in
      let cache = Delay_model.Cache.create tech c ~loads in
      let rng = Prng.create ~seed:(seed + 99) in
      for gid = 0 to N.gate_count c - 1 do
        let g = N.gate c gid in
        for _ = 1 to 4 do
          let req =
            {
              Delay_model.rising_out = Prng.bool rng;
              pin = Prng.int rng ~bound:(Array.length g.N.fanin);
              tau_in = Prng.float rng ~bound:200.;
              t_event = Prng.float rng ~bound:3000.;
              last_output_start =
                (if Prng.bool rng then None else Some (Prng.float rng ~bound:2000.));
            }
          in
          List.iter
            (fun kind ->
              let r = Delay_model.for_gate tech c ~loads gid kind req in
              let cached = Delay_model.Cache.for_gate cache gid kind req in
              if
                r.Delay_model.tp <> cached.Delay_model.tp
                || r.Delay_model.tau_out <> cached.Delay_model.tau_out
                || r.Delay_model.tp_nominal <> cached.Delay_model.tp_nominal
                || r.Delay_model.degraded <> cached.Delay_model.degraded
              then Alcotest.failf "Cache.for_gate differs on gate %d" gid;
              Delay_model.Cache.eval cache gid kind ~rising_out:req.Delay_model.rising_out
                ~pin:req.Delay_model.pin ~tau_in:req.Delay_model.tau_in
                ~t_event:req.Delay_model.t_event
                ~last_output_start:
                  (match req.Delay_model.last_output_start with
                  | Some t -> t
                  | None -> Float.nan);
              if
                Delay_model.Cache.tp cache <> r.Delay_model.tp
                || Delay_model.Cache.tau_out cache <> r.Delay_model.tau_out
              then Alcotest.failf "Cache.eval differs on gate %d" gid)
            [ Delay_model.Cdm; Delay_model.Ddm ]
        done
      done;
      true)

let tests =
  [
    ( "perf.equiv",
      [
        QCheck_alcotest.to_alcotest prop_iddm_matches_reference;
        QCheck_alcotest.to_alcotest prop_classic_matches_reference;
        QCheck_alcotest.to_alcotest prop_unboxed_heap_oracle;
        QCheck_alcotest.to_alcotest prop_cache_matches_reference;
      ] );
  ]
